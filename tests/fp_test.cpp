// Unit tests for the IEEE-754 toolkit: bit helpers, classification,
// exact printing/parsing, exception flags, FTZ/DAZ environment.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "fp/bits.hpp"
#include "fp/classify.hpp"
#include "fp/env.hpp"
#include "fp/exceptions.hpp"
#include "fp/hexfloat.hpp"
#include "fp/softfloat.hpp"
#include "support/rng.hpp"

namespace {

using namespace gpudiff::fp;

// ---------------------------------------------------------------------------
// bits
// ---------------------------------------------------------------------------

TEST(Bits, ClassPredicates64) {
  EXPECT_TRUE(is_nan_bits(std::nan("")));
  EXPECT_TRUE(is_inf_bits(infinity<double>()));
  EXPECT_TRUE(is_inf_bits(infinity<double>(true)));
  EXPECT_TRUE(is_zero_bits(0.0));
  EXPECT_TRUE(is_zero_bits(-0.0));
  EXPECT_TRUE(is_subnormal_bits(1e-310));
  EXPECT_FALSE(is_subnormal_bits(1e-300));
  EXPECT_TRUE(is_finite_bits(1.5));
  EXPECT_FALSE(is_finite_bits(infinity<double>()));
  EXPECT_FALSE(is_finite_bits(quiet_nan<double>()));
}

TEST(Bits, ClassPredicates32) {
  EXPECT_TRUE(is_nan_bits(quiet_nan<float>()));
  EXPECT_TRUE(is_inf_bits(infinity<float>()));
  EXPECT_TRUE(is_zero_bits(-0.0f));
  EXPECT_TRUE(is_subnormal_bits(1e-44f));
  EXPECT_FALSE(is_subnormal_bits(1e-37f));
}

TEST(Bits, SignHandling) {
  EXPECT_TRUE(sign_bit(-0.0));
  EXPECT_FALSE(sign_bit(0.0));
  EXPECT_TRUE(sign_bit(-std::nan("")));
  EXPECT_EQ(negate_bits(3.5), -3.5);
  EXPECT_EQ(to_bits(negate_bits(-0.0)), to_bits(0.0));
  EXPECT_EQ(copysign_bits(2.0, -1.0), -2.0);
  EXPECT_EQ(copysign_bits(-2.0, 1.0), 2.0);
  EXPECT_EQ(abs_bits(-7.0f), 7.0f);
}

TEST(Bits, Exponents) {
  EXPECT_EQ(unbiased_exponent(1.0), 0);
  EXPECT_EQ(unbiased_exponent(2.0), 1);
  EXPECT_EQ(unbiased_exponent(0.5), -1);
  EXPECT_EQ(unbiased_exponent(1.0f), 0);
  EXPECT_EQ(raw_exponent(0.0), 0);
  EXPECT_EQ(raw_exponent(1e-310), 0);  // subnormal
}

TEST(Bits, UlpDistance) {
  EXPECT_EQ(ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ulp_distance(1.0, std::nextafter(1.0, 0.0)), 1u);
  EXPECT_EQ(ulp_distance(0.0, -0.0), 1u);  // adjacent on the ordered line
  EXPECT_EQ(ulp_distance(quiet_nan<double>(), 1.0), ~0ULL);
  // Symmetry.
  EXPECT_EQ(ulp_distance(-1.5, 2.5), ulp_distance(2.5, -1.5));
}

TEST(Bits, NextUpDown) {
  EXPECT_GT(next_up(1.0), 1.0);
  EXPECT_LT(next_down(1.0), 1.0);
  EXPECT_EQ(next_up(next_down(1.0)), 1.0);
  // Crossing zero.
  EXPECT_GT(next_up(-0.0), 0.0);
  EXPECT_TRUE(is_subnormal_bits(next_up(0.0)));
  EXPECT_TRUE(sign_bit(next_down(0.0)));
}

struct NextUpCase {
  double value;
};

class NextUpMonotone : public ::testing::TestWithParam<NextUpCase> {};

TEST_P(NextUpMonotone, StrictlyIncreasing) {
  const double v = GetParam().value;
  const double up = next_up(v);
  EXPECT_GT(up, v);
  EXPECT_EQ(ulp_distance(v, up), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SweepValues, NextUpMonotone,
    ::testing::Values(NextUpCase{1.0}, NextUpCase{-1.0}, NextUpCase{1e-310},
                      NextUpCase{-1e-310}, NextUpCase{1e308},
                      NextUpCase{-1e308}, NextUpCase{0.5}, NextUpCase{-2.5}));

// ---------------------------------------------------------------------------
// classify
// ---------------------------------------------------------------------------

TEST(Classify, FullTaxonomy) {
  EXPECT_EQ(classify(quiet_nan<double>()), FpClass::PosNaN);
  EXPECT_EQ(classify(quiet_nan<double>(true)), FpClass::NegNaN);
  EXPECT_EQ(classify(infinity<double>()), FpClass::PosInf);
  EXPECT_EQ(classify(-infinity<double>()), FpClass::NegInf);
  EXPECT_EQ(classify(0.0), FpClass::PosZero);
  EXPECT_EQ(classify(-0.0), FpClass::NegZero);
  EXPECT_EQ(classify(1e-310), FpClass::PosSubnormal);
  EXPECT_EQ(classify(-1e-310), FpClass::NegSubnormal);
  EXPECT_EQ(classify(3.0), FpClass::PosNormal);
  EXPECT_EQ(classify(-3.0), FpClass::NegNormal);
}

TEST(Classify, OutcomeBucketsSubnormalIsNumber) {
  EXPECT_EQ(outcome_of(1e-310).cls, OutcomeClass::Number);
  EXPECT_EQ(outcome_of(1e-310).negative, false);
  EXPECT_EQ(outcome_of(-5.0).cls, OutcomeClass::Number);
  EXPECT_TRUE(outcome_of(-5.0).negative);
  EXPECT_EQ(outcome_of(-0.0).cls, OutcomeClass::Zero);
  EXPECT_TRUE(outcome_of(-0.0).negative);
  EXPECT_EQ(outcome_of(infinity<float>()).cls, OutcomeClass::Inf);
  EXPECT_EQ(outcome_of(quiet_nan<float>(true)).cls, OutcomeClass::NaN);
}

TEST(Classify, ToStringSpellsSign) {
  EXPECT_EQ(to_string(Outcome{OutcomeClass::Inf, true}), "-Inf");
  EXPECT_EQ(to_string(Outcome{OutcomeClass::Number, false}), "+Num");
  EXPECT_EQ(to_string(FpClass::NegSubnormal), "-Subnormal");
}

// ---------------------------------------------------------------------------
// hexfloat: printing & parsing round-trips
// ---------------------------------------------------------------------------

TEST(Hexfloat, PrintG17MatchesPrintf) {
  const double values[] = {8.6551990944767196e-306, 1.0, -0.0, 0.1, 1e300};
  for (double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    EXPECT_EQ(print_g17(v), buf);
  }
}

TEST(Hexfloat, VarityStyleSpecials) {
  EXPECT_EQ(print_varity(0.0), "+0.0");
  EXPECT_EQ(print_varity(-0.0), "-0.0");
  EXPECT_EQ(print_varity(infinity<double>()), "+inf");
  EXPECT_EQ(print_varity(-infinity<double>()), "-inf");
  EXPECT_EQ(print_varity(quiet_nan<double>(true)), "-nan");
}

TEST(Hexfloat, ParsesVarityLiterals) {
  EXPECT_EQ(parse_double("+1.5955E-125").value(), 1.5955e-125);
  EXPECT_EQ(parse_double("-1.3857E-36").value(), -1.3857e-36);
  EXPECT_EQ(parse_double("+0.0").value(), 0.0);
  EXPECT_TRUE(sign_bit(parse_double("-0.0").value()));
  EXPECT_TRUE(is_inf_bits(parse_double("-inf").value()));
  EXPECT_TRUE(is_nan_bits(parse_double("nan").value()));
  EXPECT_FALSE(parse_double("1.2.3").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
}

TEST(Hexfloat, ParsesFloatSuffix) {
  EXPECT_EQ(parse_float("1.5F").value(), 1.5f);
  EXPECT_EQ(parse_float("+1.2345E10F").value(), 1.2345e10f);
  EXPECT_TRUE(is_inf_bits(parse_float("+inf").value()));
  EXPECT_FALSE(parse_float("").has_value());
}

TEST(Hexfloat, BitEncodingRoundTrip64) {
  gpudiff::support::Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    const double v = from_bits<double>(rng.next());
    const auto back = decode_bits64(encode_bits(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(to_bits(*back), to_bits(v));  // NaN payloads preserved
  }
}

TEST(Hexfloat, BitEncodingRoundTrip32) {
  gpudiff::support::Rng rng(2025);
  for (int i = 0; i < 2000; ++i) {
    const float v = from_bits<float>(static_cast<std::uint32_t>(rng.next()));
    const auto back = decode_bits32(encode_bits(v));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(to_bits(*back), to_bits(v));
  }
}

TEST(Hexfloat, BitDecodingRejectsMalformed) {
  EXPECT_FALSE(decode_bits64("64:123").has_value());
  EXPECT_FALSE(decode_bits64("32:0000000000000000").has_value());
  EXPECT_FALSE(decode_bits64("64:GGGGGGGGGGGGGGGG").has_value());
  EXPECT_FALSE(decode_bits32("64:00000000").has_value());
}

/// Property: %.17g printing round-trips every double exactly.
TEST(Hexfloat, PrintedG17RoundTripsRandomDoubles) {
  gpudiff::support::Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    double v = from_bits<double>(rng.next());
    if (is_nan_bits(v)) continue;  // NaN payloads are not in %.17g's contract
    const auto back = parse_double(print_g17(v));
    ASSERT_TRUE(back.has_value()) << print_g17(v);
    EXPECT_EQ(to_bits(*back), to_bits(v)) << print_g17(v);
  }
}

// ---------------------------------------------------------------------------
// exceptions
// ---------------------------------------------------------------------------

TEST(Exceptions, FlagAccumulation) {
  ExceptionFlags flags;
  EXPECT_FALSE(flags.any());
  flags.raise(kInexact);
  EXPECT_TRUE(flags.inexact());
  EXPECT_FALSE(flags.any_serious());
  flags.raise(kOverflow | kInvalid);
  EXPECT_TRUE(flags.overflow());
  EXPECT_TRUE(flags.invalid());
  EXPECT_TRUE(flags.any_serious());
  flags.clear();
  EXPECT_FALSE(flags.any());
}

TEST(Exceptions, ToStringListsRaised) {
  ExceptionFlags flags;
  EXPECT_EQ(flags.to_string(), "none");
  flags.raise(kDivideByZero | kUnderflow);
  const std::string s = flags.to_string();
  EXPECT_NE(s.find("div-by-zero"), std::string::npos);
  EXPECT_NE(s.find("underflow"), std::string::npos);
  EXPECT_EQ(s.find("overflow"), std::string::npos);
}

TEST(Exceptions, InferArithmetic) {
  EXPECT_TRUE(infer_arith_exceptions(quiet_nan<double>(), true, true) & kInvalid);
  EXPECT_TRUE(infer_arith_exceptions(infinity<double>(), true, true) & kOverflow);
  EXPECT_TRUE(infer_arith_exceptions(1e-310, true, true) & kUnderflow);
  EXPECT_TRUE(infer_arith_exceptions(1.5, true, false) & kInexact);
  EXPECT_EQ(infer_arith_exceptions(1.5, true, true), 0);
}

// ---------------------------------------------------------------------------
// env (FTZ / DAZ)
// ---------------------------------------------------------------------------

TEST(Env, FtzFlushesSubnormalResults) {
  FpEnv env;
  env.ftz32 = true;
  ExceptionFlags flags;
  EXPECT_EQ(apply_ftz(1e-44f, env, &flags), 0.0f);
  EXPECT_TRUE(flags.underflow());
  EXPECT_TRUE(sign_bit(apply_ftz(-1e-44f, env)));
  EXPECT_EQ(apply_ftz(1e-30f, env), 1e-30f);  // normal untouched
  // FP64 unaffected by ftz32.
  EXPECT_EQ(apply_ftz(1e-310, env), 1e-310);
}

TEST(Env, DazZeroesSubnormalInputs) {
  FpEnv env;
  env.daz32 = true;
  EXPECT_EQ(apply_daz(1e-44f, env), 0.0f);
  EXPECT_TRUE(sign_bit(apply_daz(-1e-44f, env)));
  EXPECT_EQ(apply_daz(1e-44, env), 1e-44);  // double side has its own switch
  FpEnv env64;
  env64.daz64 = true;
  EXPECT_EQ(apply_daz(1e-310, env64), 0.0);
}

TEST(Env, DefaultEnvIsTransparent) {
  FpEnv env;
  EXPECT_EQ(apply_ftz(1e-44f, env), 1e-44f);
  EXPECT_EQ(apply_daz(1e-310, env), 1e-310);
  EXPECT_EQ(env.div32, Div32Mode::IEEE);
  EXPECT_FALSE(env.naive_minmax);
}

// ---------------------------------------------------------------------------
// softfloat: the assist-free integer mul/div must match the host FPU
// bit-for-bit on every finite operand pair — the hardware is the oracle.
// ---------------------------------------------------------------------------

template <typename T>
void check_softfloat_against_hardware() {
  using B = typename FloatTraits<T>::Bits;
  gpudiff::support::Rng rng(0x50F7u);
  // Operand generators biased toward the assist-prone classes: subnormals,
  // near-underflow and near-overflow magnitudes, plus uniform bit noise.
  const auto gen = [&]() -> T {
    const auto cls = rng.next() % 4;
    B bits = static_cast<B>(rng.next());
    constexpr int m = FloatTraits<T>::mantissa_bits;
    constexpr int ebits = FloatTraits<T>::exponent_bits;
    const B sign = bits & FloatTraits<T>::sign_mask;
    if (cls == 0) {  // subnormal
      bits = sign | (bits & FloatTraits<T>::mantissa_mask);
    } else if (cls == 1) {  // tiny normal exponent
      const B e = static_cast<B>(1 + rng.next() % 40);
      bits = sign | (e << m) | (bits & FloatTraits<T>::mantissa_mask);
    } else if (cls == 2) {  // huge exponent
      const B e = static_cast<B>(((B{1} << ebits) - 2) - rng.next() % 40);
      bits = sign | (e << m) | (bits & FloatTraits<T>::mantissa_mask);
    }
    return from_bits<T>(bits);
  };
  int checked = 0;
  for (int i = 0; i < 200000; ++i) {
    const T a = gen();
    const T b = gen();
    if (is_nan_bits(a) || is_nan_bits(b) || is_inf_bits(a) || is_inf_bits(b))
      continue;
    const T hw_mul = a * b;
    ASSERT_EQ(to_bits(soft_mul(a, b)), to_bits(hw_mul))
        << encode_bits(a) << " * " << encode_bits(b);
    if (!is_zero_bits(a) && !is_zero_bits(b)) {
      const T hw_div = a / b;
      ASSERT_EQ(to_bits(soft_div(a, b)), to_bits(hw_div))
          << encode_bits(a) << " / " << encode_bits(b);
    }
    ++checked;
  }
  ASSERT_GT(checked, 100000);
}

TEST(SoftFloat, MulDivMatchHardware64) { check_softfloat_against_hardware<double>(); }
TEST(SoftFloat, MulDivMatchHardware32) { check_softfloat_against_hardware<float>(); }

TEST(SoftFloat, DirectedEdgeCases64) {
  const double cases[][2] = {
      {0x1p-1074, 0x1p-1074},    // min subnormal squared -> 0
      {0x1.8p-1074, 1.0},        // halfway-odd: RNE up
      {0x1p-1022, 0.5},          // min normal down into subnormal
      {0x1.fffffffffffffp+1023, 0x1p-1074},  // extreme magnitudes
      {0x1p-537, 0x1p-537},      // product exactly min subnormal scale
      {-0x1p-1070, 0x1p+3},
      {5.0, 3.0},                // plain normals (exactness of the path)
  };
  for (const auto& c : cases) {
    EXPECT_EQ(to_bits(soft_mul(c[0], c[1])), to_bits(c[0] * c[1]))
        << c[0] << " * " << c[1];
    EXPECT_EQ(to_bits(soft_div(c[0], c[1])), to_bits(c[0] / c[1]))
        << c[0] << " / " << c[1];
    EXPECT_EQ(to_bits(soft_div(c[1], c[0])), to_bits(c[1] / c[0]))
        << c[1] << " / " << c[0];
  }
  // Overflow to infinity through division by a subnormal.
  EXPECT_EQ(to_bits(soft_div(0x1p+1000, 0x1p-1074)),
            to_bits(std::numeric_limits<double>::infinity()));
}

}  // namespace
