// Reducer tests: the triage-pipeline lock (ISSUE: discrepancy triage).
//
// The load-bearing properties, in the order the pipeline needs them:
//   * verdict preservation — every reproducer keeps the original record's
//     per-pair (pair, DiscrepancyClass) verdict exactly;
//   * 1-minimality — dropping any single statement of the reproducer
//     either kills the discrepancy or breaks the program;
//   * determinism — the same record reduces to byte-identical bundles
//     across repeated runs, SIMD lane engines, VM backends, and batch vs
//     single-record mode (the reduce-drill CI job re-checks this across
//     processes);
//   * the bundle byte layout is golden-locked, and a tampered bundle is
//     refused on reload.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "diff/campaign.hpp"
#include "diff/discrepancy.hpp"
#include "ir/mutate.hpp"
#include "opt/platform.hpp"
#include "reduce/bundle.hpp"
#include "reduce/reduce.hpp"
#include "store/store.hpp"
#include "support/cpu.hpp"
#include "support/json.hpp"
#include "support/thread_pool.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;
using support::Json;

const char* kGoldenBundle =
    GPUDIFF_SOURCE_DIR "/tests/golden/reduce_bundle_p60_i3_s1234_8-2-O3.json";

/// A scratch directory removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// The corpus every test reduces from: a fixed-seed campaign big enough
/// to retain a statistically meaningful record set (>= 50 discrepancies,
/// every class family represented in practice).
diff::CampaignConfig corpus_config() {
  diff::CampaignConfig config;
  config.seed = 1234;
  config.num_programs = 240;
  config.inputs_per_program = 3;
  config.platforms = opt::parse_platform_list("nvcc,hipcc");
  return config;
}

/// The smaller configuration the golden bundle was generated from (the
/// gpudiff-reduce CLI with --programs 60 --inputs 3 --seed 1234).
diff::CampaignConfig golden_config() {
  diff::CampaignConfig config = corpus_config();
  config.num_programs = 60;
  return config;
}

const diff::CampaignResults& corpus() {
  static const diff::CampaignResults results =
      diff::run_campaign(corpus_config());
  return results;
}

reduce::RecordRef ref_of(const diff::DiscrepancyRecord& rec) {
  return {rec.program_index, rec.input_index, rec.level};
}

std::string bundle_bytes(const reduce::Reduction& reduction,
                         const diff::CampaignConfig& config) {
  return reduce::bundle_to_json(reduction, config).dump(1) + "\n";
}

TEST(RecordKey, RoundTripAndRejection) {
  reduce::RecordRef ref;
  ASSERT_TRUE(reduce::parse_record_key("41:2:O3", &ref));
  EXPECT_EQ(ref.program_index, 41u);
  EXPECT_EQ(ref.input_index, 2);
  EXPECT_EQ(ref.level, opt::OptLevel::O3);
  EXPECT_EQ(ref.key(), "41:2:O3");
  ASSERT_TRUE(reduce::parse_record_key("0:0:O3_FM", &ref));
  EXPECT_EQ(ref.key(), "0:0:O3_FM");

  for (const char* bad : {"", "41", "41:2", "41:2:O9", "41:x:O3", "x:2:O3",
                          "41:-1:O3", "41:2:O3:extra", "41 :2:O3", "41:2:"}) {
    EXPECT_FALSE(reduce::parse_record_key(bad, &ref)) << bad;
  }
}

TEST(Reduce, CorpusRetainsStatisticallyMeaningfulRecordSet) {
  ASSERT_GE(corpus().records.size(), 50u);
}

// The tentpole property pair, end to end over every record of the corpus:
// each reproducer preserves the original verdict, and is 1-minimal — no
// single statement can be removed without killing the discrepancy or
// dangling a temp reference.  The re-checks run against the reducer's own
// verdict_of, which the stress tier separately pins to the tree oracle.
TEST(Reduce, EveryRecordReducesToVerdictPreservingOneMinimalReproducer) {
  const diff::CampaignConfig config = corpus_config();
  const auto& records = corpus().records;
  std::vector<std::string> failures;
  std::mutex mu;
  support::parallel_for(records.size(), [&](std::size_t i) {
    const diff::DiscrepancyRecord& rec = records[i];
    const reduce::Reduction r = reduce::reduce_record(config, ref_of(rec));
    std::string fail;
    // Verdict preservation against the record itself.
    if (r.verdict.pair_cls != rec.pair_cls) {
      fail = "verdict vector differs from the record's";
    } else if (reduce::verdict_of(r.program, config, rec.level, r.args) !=
               r.verdict) {
      fail = "reproducer does not reproduce its own verdict";
    } else if (r.reduced_stmts > r.original_stmts) {
      fail = "reduction grew the statement count";
    } else {
      // 1-minimality: every single-statement drop is fatal.
      for (const ir::StmtId id : ir::preorder_statements(r.program)) {
        const std::optional<ir::Program> dropped =
            reduce::drop_statement(r.program, id);
        if (!dropped) continue;  // dangling temp: removal breaks the program
        reduce::Verdict v;
        try {
          v = reduce::verdict_of(*dropped, config, rec.level, r.args);
        } catch (const std::exception&) {
          continue;  // compile/run failure: equally fatal to the reproducer
        }
        if (v == r.verdict) {
          fail = "statement " + std::to_string(id.v) +
                 " can be dropped without changing the verdict";
          break;
        }
      }
    }
    if (!fail.empty()) {
      std::lock_guard<std::mutex> lock(mu);
      failures.push_back(ref_of(rec).key() + ": " + fail);
    }
  });
  EXPECT_TRUE(failures.empty()) << failures.size() << " record(s) failed, "
                                << "first: "
                                << (failures.empty() ? "" : failures.front());
}

// Determinism across everything that must not matter: repeated runs, SIMD
// lane engines, and VM backends all serialize to the same bundle bytes.
TEST(Reduce, BundleBytesInvariantAcrossRunsEnginesAndBackends) {
  const diff::CampaignConfig config = corpus_config();
  const auto& records = corpus().records;
  ASSERT_FALSE(records.empty());

  // Engines this binary can run (same probe as the stress tier).
  std::vector<support::SimdOverride> engines{support::SimdOverride::Off,
                                             support::SimdOverride::Scalar};
  const support::SimdOverride saved_engine = support::simd_override();
  support::set_simd_override(support::SimdOverride::Avx2);
  try {
    (void)vgpu::simd_engine();
    engines.push_back(support::SimdOverride::Avx2);
  } catch (const std::runtime_error&) {
  }
  support::set_simd_override(saved_engine);
  const vgpu::ExecBackend saved_backend = vgpu::exec_backend();

  const std::size_t n = std::min<std::size_t>(records.size(), 6);
  for (std::size_t i = 0; i < n; ++i) {
    const reduce::RecordRef ref = ref_of(records[i]);
    const std::string baseline =
        bundle_bytes(reduce::reduce_record(config, ref), config);
    EXPECT_EQ(baseline,
              bundle_bytes(reduce::reduce_record(config, ref), config))
        << ref.key() << ": repeated run";
    for (const support::SimdOverride engine : engines) {
      support::set_simd_override(engine);
      EXPECT_EQ(baseline,
                bundle_bytes(reduce::reduce_record(config, ref), config))
          << ref.key() << ": engine " << support::to_string(engine);
    }
    support::set_simd_override(saved_engine);
    for (const vgpu::ExecBackend backend :
         {vgpu::ExecBackend::Bytecode, vgpu::ExecBackend::TreeWalk}) {
      vgpu::set_exec_backend(backend);
      EXPECT_EQ(baseline,
                bundle_bytes(reduce::reduce_record(config, ref), config))
          << ref.key() << ": backend " << static_cast<int>(backend);
    }
    vgpu::set_exec_backend(saved_backend);
  }
}

// Batch mode (reduce_records, what --from-report and --reduce-exemplars
// drive) writes byte-for-byte what single-record mode serializes.
TEST(Reduce, BatchModeMatchesSingleRecordModeByteForByte) {
  const diff::CampaignConfig config = corpus_config();
  const auto& records = corpus().records;
  const std::size_t n = std::min<std::size_t>(records.size(), 5);
  const std::vector<diff::DiscrepancyRecord> subset(records.begin(),
                                                    records.begin() + n);
  TempDir dir("gpudiff_reduce_batch_test");
  const std::vector<reduce::RecordRef> reduced =
      reduce::reduce_records(config, subset, dir.str());
  ASSERT_EQ(reduced.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const reduce::RecordRef ref = ref_of(subset[i]);
    EXPECT_EQ(reduced[i].key(), ref.key());
    const std::string batch =
        support::read_file(dir.file(reduce::bundle_filename(ref)));
    const std::string single =
        bundle_bytes(reduce::reduce_record(config, ref), config);
    EXPECT_EQ(batch, single) << ref.key();
  }
}

// reduce_exemplars selects exactly the records a store population of the
// same results would list as exemplar keys — the bundles line up with
// what gpudiff-serve reports.
TEST(Reduce, ExemplarSelectionMatchesStorePopulationRule) {
  const diff::CampaignConfig config = corpus_config();
  const auto& records = corpus().records;
  TempDir dir("gpudiff_reduce_exemplar_test");
  const std::vector<reduce::RecordRef> reduced =
      reduce::reduce_exemplars(config, records, dir.str(),
                               /*max_exemplars=*/2);
  ASSERT_FALSE(reduced.empty());
  const store::ExemplarKeys exemplars =
      store::select_exemplars(records, config.platforms.size(), 2);
  std::vector<std::string> expected;
  for (const auto& per_class : exemplars)
    for (const auto& cell : per_class)
      for (const auto& key : cell)
        if (std::find(expected.begin(), expected.end(), key) ==
            expected.end())
          expected.push_back(key);
  std::vector<std::string> got;
  for (const reduce::RecordRef& ref : reduced) got.push_back(ref.key());
  std::sort(expected.begin(), expected.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(Reduce, NonDiscrepantRecordIsRefused) {
  const diff::CampaignConfig config = corpus_config();
  // Find a (program, input, level) triple the campaign did NOT retain.
  std::vector<std::string> retained;
  for (const auto& rec : corpus().records)
    retained.push_back(ref_of(rec).key());
  reduce::RecordRef ref{0, 0, opt::OptLevel::O0};
  while (std::find(retained.begin(), retained.end(), ref.key()) !=
         retained.end())
    ++ref.program_index;
  EXPECT_THROW(reduce::reduce_record(config, ref), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Bundle format: golden byte lock + tamper refusal.
// ---------------------------------------------------------------------------

TEST(ReduceBundle, GoldenByteLayoutIsStable) {
  const diff::CampaignConfig config = golden_config();
  reduce::RecordRef ref;
  ASSERT_TRUE(reduce::parse_record_key("8:2:O3", &ref));
  const std::string produced =
      bundle_bytes(reduce::reduce_record(config, ref), config);
  EXPECT_EQ(produced, support::read_file(kGoldenBundle))
      << "reduce bundle byte layout changed; if intentional, bump "
         "kBundleVersion and regenerate tests/golden/";
}

TEST(ReduceBundle, GoldenBundlePassesItsOwnDigestCheck) {
  const Json bundle = reduce::load_bundle(kGoldenBundle);  // throws on tamper
  EXPECT_EQ(bundle.at("record").as_string(), "8:2:O3");
  EXPECT_EQ(bundle.at("format").as_string(), reduce::kBundleFormat);
  const std::string label =
      bundle.at("sensitivity").at("label").as_string();
  EXPECT_TRUE(label == "platform-divergent" || label == "ill-conditioned");
}

TEST(ReduceBundle, TamperedBundleIsRefusedOnReload) {
  const std::string original = support::read_file(kGoldenBundle);
  TempDir dir("gpudiff_reduce_tamper_test");

  // Payload edit: a "fixed up" statement count with the old digest.
  Json tampered = Json::parse(original);
  tampered["checks"] =
      static_cast<long long>(tampered.at("checks").as_int() + 1);
  EXPECT_THROW(reduce::check_bundle(tampered), std::runtime_error);
  support::write_file(dir.file("tampered.json"), tampered.dump(1) + "\n");
  EXPECT_THROW(reduce::load_bundle(dir.file("tampered.json")),
               std::runtime_error);

  // Digest edit: valid JSON, wrong seal.
  Json reseal = Json::parse(original);
  reseal["digest"] = "0000000000000000";
  EXPECT_THROW(reduce::check_bundle(reseal), std::runtime_error);

  // Missing digest entirely.
  const Json parsed = Json::parse(original);
  Json unsealed = Json::object();
  for (const auto& [key, value] : parsed.as_object())
    if (key != "digest") unsealed[key] = value;
  EXPECT_THROW(reduce::check_bundle(unsealed), std::runtime_error);

  // The untouched original still loads.
  support::write_file(dir.file("ok.json"), original);
  EXPECT_NO_THROW(reduce::load_bundle(dir.file("ok.json")));
}

// ---------------------------------------------------------------------------
// Sensitivity probe: label determinism and structural sanity.
// ---------------------------------------------------------------------------

TEST(Sensitivity, ProbeCoversExactlyTheFloatingParams) {
  const diff::CampaignConfig config = corpus_config();
  const auto& records = corpus().records;
  ASSERT_FALSE(records.empty());
  const diff::DiscrepancyRecord& rec = records.front();
  const ir::Program program =
      reduce::regenerate_program(config, rec.program_index);
  const vgpu::KernelArgs args = reduce::regenerate_args(
      config, program, rec.program_index, rec.input_index);
  const reduce::SensitivityReport report =
      reduce::probe_sensitivity(program, config, rec.level, args);

  std::size_t fp_params = 0;
  for (const auto& param : program.params())
    if (param.kind != ir::ParamKind::Int) ++fp_params;
  EXPECT_EQ(report.params.size(), fp_params);
  for (const auto& probe : report.params) {
    EXPECT_GE(probe.step, 0.0);
    EXPECT_GE(probe.rel_condition, 0.0);
    EXPECT_LT(static_cast<std::size_t>(probe.param),
              program.params().size());
    EXPECT_NE(program.params()[probe.param].kind, ir::ParamKind::Int);
  }
  const bool ill = report.outcome_flip || report.condition > report.threshold;
  EXPECT_EQ(report.label == reduce::SensitivityLabel::IllConditioned, ill);
}

}  // namespace
