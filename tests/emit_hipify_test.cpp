// Tests for the CUDA/HIP emitters and the HIPIFY source translator.

#include <gtest/gtest.h>

#include "emit/emit.hpp"
#include "gen/generator.hpp"
#include "hipify/hipify.hpp"
#include "ir/builder.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::ir;

Program tiny_program() {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  const int x = b.add_scalar_param();
  const int arr = b.add_array_param();
  b.begin_for(n);
  b.assign_comp(AssignOp::Add,
                make_call(A, MathFn::Fmod, make_array(A, arr, make_loop_var(A, 0)),
                          make_param(A, x)));
  b.end_block();
  return b.build();
}

// ---------------------------------------------------------------------------
// emit
// ---------------------------------------------------------------------------

TEST(Emit, KernelViewMatchesPaperFigure2Shape) {
  const std::string k = emit::emit_kernel(tiny_program());
  EXPECT_NE(k.find("__global__"), std::string::npos);
  EXPECT_NE(k.find("void compute(double comp, int var_1, double var_2, double* var_3)"),
            std::string::npos);
  EXPECT_NE(k.find("printf(\"%.17g\\n\", comp);"), std::string::npos);
  EXPECT_NE(k.find("fmod(var_3[i], var_2)"), std::string::npos);
}

TEST(Emit, CudaTranslationUnitIsComplete) {
  const std::string cu = emit::emit_cuda(tiny_program());
  EXPECT_NE(cu.find("#include <cuda_runtime.h>"), std::string::npos);
  EXPECT_NE(cu.find("cudaMalloc"), std::string::npos);
  EXPECT_NE(cu.find("cudaMemcpy"), std::string::npos);
  EXPECT_NE(cu.find("cudaMemcpyHostToDevice"), std::string::npos);
  EXPECT_NE(cu.find("compute<<<dim3(1), dim3(1)>>>"), std::string::npos);
  EXPECT_NE(cu.find("cudaDeviceSynchronize"), std::string::npos);
  EXPECT_NE(cu.find("cudaFree"), std::string::npos);
  EXPECT_NE(cu.find("int main(int argc, char** argv)"), std::string::npos);
  EXPECT_NE(cu.find("atof(argv["), std::string::npos);
  EXPECT_NE(cu.find("atoi(argv["), std::string::npos);
}

TEST(Emit, HipTranslationUnitUsesHipApi) {
  const std::string hip = emit::emit_hip(tiny_program());
  EXPECT_NE(hip.find("#include \"hip/hip_runtime.h\""), std::string::npos);
  EXPECT_NE(hip.find("hipMalloc"), std::string::npos);
  EXPECT_NE(hip.find("hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0,"),
            std::string::npos);
  EXPECT_NE(hip.find("hipDeviceSynchronize"), std::string::npos);
  // No CUDA API spellings anywhere.
  EXPECT_EQ(hip.find("cuda"), std::string::npos);
  EXPECT_EQ(hip.find("<<<"), std::string::npos);
}

TEST(Emit, Fp32UsesFloatTypesAndSuffixedCalls) {
  ProgramBuilder b(Precision::FP32);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(AssignOp::Add, make_call(A, MathFn::Cos, make_param(A, x)));
  const std::string cu = emit::emit_cuda(b.build());
  EXPECT_NE(cu.find("void compute(float comp, float var_1)"), std::string::npos);
  EXPECT_NE(cu.find("cosf(var_1)"), std::string::npos);
  EXPECT_NE(cu.find("(float)atof"), std::string::npos);
}

TEST(Emit, ArrayInitializationLoop) {
  const std::string cu = emit::emit_cuda(tiny_program());
  EXPECT_NE(cu.find("for (int i = 0; i < 256; ++i) init_var_3[i] = host_var_3_init;"),
            std::string::npos);
  EXPECT_NE(cu.find("256 * sizeof(double)"), std::string::npos);
}

TEST(Emit, GeneratedProgramsEmitBothDialects) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 31);
  for (int i = 0; i < 20; ++i) {
    const Program p = g.generate(i);
    const std::string cu = emit::emit_cuda(p);
    const std::string hip = emit::emit_hip(p);
    EXPECT_NE(cu.find("__global__"), std::string::npos);
    EXPECT_EQ(hip.find("cuda"), std::string::npos) << "program " << i;
    // The kernel body itself is dialect-independent.
    EXPECT_EQ(emit::emit_kernel(p),
              emit::emit_kernel(p));
  }
}

// ---------------------------------------------------------------------------
// hipify
// ---------------------------------------------------------------------------

TEST(Hipify, TranslatesEmittedCudaCompletely) {
  const std::string cu = emit::emit_cuda(tiny_program());
  const auto result = hipify::hipify_source(cu);
  EXPECT_GT(result.replacements, 0);
  EXPECT_EQ(result.launches_converted, 1);
  EXPECT_EQ(result.source.find("cuda"), std::string::npos)
      << "unconverted CUDA API left behind";
  EXPECT_EQ(result.source.find("<<<"), std::string::npos);
  EXPECT_NE(result.source.find("hipLaunchKernelGGL(compute, dim3(1), dim3(1), 0, 0,"),
            std::string::npos);
  EXPECT_NE(result.source.find("\"hip/hip_runtime.h\""), std::string::npos);
  EXPECT_TRUE(result.warnings.empty());
}

TEST(Hipify, ConvertedSourceMatchesNativeHipApiUsage) {
  // HIPIFY output and native HIP emission use the same runtime calls (the
  // sources differ only in incidental formatting).
  gen::GenConfig cfg;
  gen::Generator g(cfg, 32);
  for (int i = 0; i < 10; ++i) {
    const Program p = g.generate(i);
    const auto converted = hipify::hipify_source(emit::emit_cuda(p));
    const std::string native = emit::emit_hip(p);
    for (const char* api : {"hipMalloc", "hipMemcpy", "hipLaunchKernelGGL",
                            "hipDeviceSynchronize", "hipFree"}) {
      EXPECT_EQ(converted.source.find(api) == std::string::npos,
                native.find(api) == std::string::npos)
          << api << " program " << i;
    }
  }
}

TEST(Hipify, RenamesRespectIdentifierBoundaries) {
  const auto r = hipify::hipify_source("int my_cudaMalloc_thing = 0;");
  EXPECT_NE(r.source.find("my_cudaMalloc_thing"), std::string::npos);
  const auto r2 = hipify::hipify_source("cudaMemcpyAsync(a, b, n, k, s);");
  EXPECT_NE(r2.source.find("hipMemcpyAsync"), std::string::npos);
}

TEST(Hipify, LaunchConfigVariants) {
  const auto r = hipify::hipify_source("kern<<<grid, block>>>(a, b);");
  EXPECT_NE(r.source.find("hipLaunchKernelGGL(kern, grid, block, 0, 0, a, b)"),
            std::string::npos);
  const auto r2 = hipify::hipify_source("kern<<<g, b, 128, stream>>>(x);");
  EXPECT_NE(r2.source.find("hipLaunchKernelGGL(kern, g, b, 128, stream, x)"),
            std::string::npos);
  const auto r3 = hipify::hipify_source("kern<<<dim3(2,2), dim3(8,8)>>>();");
  EXPECT_NE(r3.source.find("hipLaunchKernelGGL(kern, dim3(2,2), dim3(8,8), 0, 0)"),
            std::string::npos);
}

TEST(Hipify, WarnsOnMalformedLaunch) {
  const auto r = hipify::hipify_source("kern<<<g, b>>> missing_args;");
  EXPECT_FALSE(r.warnings.empty());
  const auto r2 = hipify::hipify_source("kern<<<unterminated");
  EXPECT_FALSE(r2.warnings.empty());
}

TEST(Hipify, WarnsOnLeftoverCudaReferences) {
  const auto r = hipify::hipify_source("cudaExoticNewApi(x);");
  EXPECT_FALSE(r.warnings.empty());
}

TEST(Hipify, IdempotentOnHipSource) {
  const std::string hip = emit::emit_hip(tiny_program());
  const auto r = hipify::hipify_source(hip);
  EXPECT_EQ(r.source, hip);
  EXPECT_EQ(r.replacements, 0);
  EXPECT_EQ(r.launches_converted, 0);
}

}  // namespace
