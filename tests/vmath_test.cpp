// Tests for the math substrate: fixed-point constant derivation, argument
// reduction, shared kernels (accuracy vs host libm), exact generic ops, and
// the vendor libraries' documented agreement/divergence behaviours.

#include <gtest/gtest.h>

#include <cmath>

#include "fp/bits.hpp"
#include "fp/hexfloat.hpp"
#include "support/rng.hpp"
#include "vmath/core/bigfixed.hpp"
#include "vmath/core/dd.hpp"
#include "vmath/core/kernels.hpp"
#include "vmath/core/reduce.hpp"
#include "vmath/mathlib.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::vmath;
using core::PolyScheme;
using core::ReduceStyle;

double ulps(double a, double b) {
  return static_cast<double>(fp::ulp_distance(a, b));
}

// ---------------------------------------------------------------------------
// BigFixed: pi and 2/pi derived from scratch
// ---------------------------------------------------------------------------

TEST(BigFixed, PiMatchesKnownPrefix) {
  // pi = 3.243F6A8885A308D313198A2E03707344A4093822299F31D0... (hex)
  const auto pi = core::big_pi(8);
  EXPECT_EQ(pi.int_part, 3u);
  EXPECT_EQ(pi.limb(0), 0x243F6A88u);
  EXPECT_EQ(pi.limb(1), 0x85A308D3u);
  EXPECT_EQ(pi.limb(2), 0x13198A2Eu);
  EXPECT_EQ(pi.limb(3), 0x03707344u);
  EXPECT_EQ(pi.limb(4), 0xA4093822u);
}

TEST(BigFixed, TwoOverPiMatchesFdlibmTable) {
  // fdlibm's two_over_pi table begins A2F983 6E4E44 1529FC 2757D1 F534DD.
  EXPECT_EQ(core::two_over_pi_word(0), 0xA2F9836E4E441529ULL);
  EXPECT_EQ(core::two_over_pi_word(1), 0xFC2757D1F534DDC0ULL);
}

TEST(BigFixed, ArithmeticBasics) {
  core::BigFixed one(4);
  one.int_part = 1;
  core::BigFixed third(4);
  third.set_quotient(one, 3);
  EXPECT_EQ(third.int_part, 0u);
  EXPECT_EQ(third.limb(0), 0x55555555u);
  core::BigFixed two_thirds = third;
  two_thirds.add(third);
  EXPECT_EQ(two_thirds.limb(0), 0xAAAAAAAAu);
  two_thirds.sub(third);
  EXPECT_EQ(two_thirds.compare(third), 0);
  third.mul_small(3);
  EXPECT_EQ(third.int_part, 0u);  // 0.FFFF... stays below 1
  EXPECT_EQ(third.limb(0), 0xFFFFFFFFu);
}

TEST(BigFixed, ExtractAndSetBits) {
  core::BigFixed v(4);
  v.set_fraction_bit(0);   // 0.5
  v.set_fraction_bit(3);   // + 0.0625
  EXPECT_EQ(v.extract_bits(0, 4), 0b1001u);
  EXPECT_EQ(v.extract_bits(1, 3), 0b001u);
  EXPECT_TRUE(!v.is_zero());
}

TEST(Reduce, Pio2DoubleDouble) {
  double hi, lo;
  core::pio2_dd(&hi, &lo);
  EXPECT_EQ(hi, 1.5707963267948966);
  EXPECT_NEAR(lo, 6.123233995736766e-17, 1e-30);
}

// ---------------------------------------------------------------------------
// Trig: both reduction styles vs host libm (glibc does exact reduction)
// ---------------------------------------------------------------------------

struct TrigCase {
  double x;
};

class TrigAccuracy : public ::testing::TestWithParam<TrigCase> {};

TEST_P(TrigAccuracy, SinWithin2Ulp) {
  const double x = GetParam().x;
  EXPECT_LE(ulps(core::sin64(x, ReduceStyle::CodyWaite3), std::sin(x)), 2.0)
      << "x=" << x;
  EXPECT_LE(ulps(core::cos64(x, ReduceStyle::CodyWaite3), std::cos(x)), 2.0)
      << "x=" << x;
  EXPECT_LE(ulps(core::tan64(x, ReduceStyle::CodyWaite3), std::tan(x)), 4.0)
      << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrigAccuracy,
    ::testing::Values(TrigCase{0.1}, TrigCase{-0.7}, TrigCase{1.0},
                      TrigCase{3.0}, TrigCase{-10.5}, TrigCase{355.0},
                      TrigCase{1e4}, TrigCase{123456.7}, TrigCase{1647098.0},
                      TrigCase{1647101.0}, TrigCase{1e10}, TrigCase{-1e22},
                      TrigCase{1e100}, TrigCase{8.7e305}, TrigCase{-1e308}));

TEST(Trig, RandomSweepBothStylesVsHost) {
  support::Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(-1e6, 1e6);
    ASSERT_LE(ulps(core::sin64(x, ReduceStyle::CodyWaite3), std::sin(x)), 2.0)
        << "x=" << fp::print_g17(x) << " (CW3)";
  }
}

TEST(Trig, Specials) {
  EXPECT_TRUE(fp::is_nan_bits(core::sin64(fp::infinity<double>(), ReduceStyle::CodyWaite3)));
  EXPECT_TRUE(fp::is_nan_bits(core::cos64(-fp::infinity<double>(), ReduceStyle::CodyWaite2)));
  EXPECT_TRUE(fp::is_nan_bits(core::tan64(std::nan(""), ReduceStyle::CodyWaite3)));
  EXPECT_EQ(core::sin64(0.0, ReduceStyle::CodyWaite3), 0.0);
  EXPECT_EQ(core::cos64(0.0, ReduceStyle::CodyWaite3), 1.0);
  // Odd symmetry.
  for (double x : {0.5, 100.0, 1e9, 1e300})
    EXPECT_EQ(core::sin64(-x, ReduceStyle::CodyWaite3),
              -core::sin64(x, ReduceStyle::CodyWaite3));
}

TEST(Trig, HugeArgsUsePayneHanekAndStylesAgree) {
  // Beyond the Cody-Waite bound both styles share the exact Payne-Hanek
  // reduction; only the kernel's fused/unfused last rounding can differ.
  for (double x : {2e6, 1e10, 1e100, 1e300}) {
    EXPECT_LE(fp::ulp_distance(core::sin64(x, ReduceStyle::CodyWaite2),
                               core::sin64(x, ReduceStyle::CodyWaite3)),
              1u)
        << "x=" << x;
  }
}

TEST(Trig, StylesDivergeNearMultiplesOfPi) {
  // Near-cancellation arguments expose the 2-constant reduction's error:
  // essentially every argument within ~1e-13 of a multiple of pi diverges.
  int diverged = 0;
  for (int k = 1000; k < 2000; ++k) {
    const double x = 3.141592653589793 * k;  // close to k*pi
    if (core::sin64(x, ReduceStyle::CodyWaite2) !=
        core::sin64(x, ReduceStyle::CodyWaite3))
      ++diverged;
  }
  EXPECT_GT(diverged, 900);
  // Away from the cancellation band the two paths differ only through the
  // fused-kernel last-ULP mechanism (~13% of arguments), never more.
  support::Rng rng(30);
  int random_diverged = 0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(1.0, 1e6);
    const double a = core::sin64(x, ReduceStyle::CodyWaite2);
    const double b = core::sin64(x, ReduceStyle::CodyWaite3);
    if (a != b) {
      ++random_diverged;
      EXPECT_LE(fp::ulp_distance(a, b), 2u) << "x=" << fp::print_g17(x);
    }
  }
  EXPECT_LT(random_diverged, 2000 / 4);
}

// ---------------------------------------------------------------------------
// exp / log / atan / asin / acos / tanh / pow
// ---------------------------------------------------------------------------

TEST(ExpLog, AccuracyVsHost) {
  support::Rng rng(32);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(-700.0, 700.0);
    ASSERT_LE(ulps(core::exp64(x), std::exp(x)), 2.0) << "x=" << x;
  }
  for (int i = 0; i < 3000; ++i) {
    const double x = std::exp(rng.uniform(-700.0, 700.0));
    ASSERT_LE(ulps(core::log64(x), std::log(x)), 2.0) << "x=" << x;
  }
}

TEST(ExpLog, Specials) {
  EXPECT_EQ(core::exp64(0.0), 1.0);
  EXPECT_TRUE(fp::is_inf_bits(core::exp64(710.0)));
  EXPECT_EQ(core::exp64(-746.0), 0.0);
  EXPECT_EQ(core::exp64(fp::infinity<double>(true)), 0.0);
  EXPECT_TRUE(fp::is_inf_bits(core::exp64(fp::infinity<double>())));
  EXPECT_TRUE(fp::is_inf_bits(core::log64(0.0)));
  EXPECT_TRUE(fp::sign_bit(core::log64(0.0)));
  EXPECT_TRUE(fp::is_nan_bits(core::log64(-1.0)));
  EXPECT_EQ(core::log64(1.0), 0.0);
  // Subnormal input handled by scaling.
  EXPECT_LE(ulps(core::log64(1e-310), std::log(1e-310)), 2.0);
}

TEST(ExpLog, SchemesAgreeMostlyAndDifferOccasionally) {
  support::Rng rng(33);
  int diff_exp = 0, diff_log = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const double x = rng.uniform(-500.0, 500.0);
    if (core::exp64(x, PolyScheme::Horner) != core::exp64(x, PolyScheme::Estrin))
      ++diff_exp;
    // Sample log near 1, where the polynomial term is not swamped by k*ln2
    // and the association difference can reach the rounding.
    const double y = std::exp(rng.uniform(-0.5, 0.5));
    const double h = core::log64(y, PolyScheme::Horner);
    const double e = core::log64(y, PolyScheme::Estrin);
    if (h != e) ++diff_log;
    ASSERT_LE(ulps(h, e), 1.0);  // never more than the last ulp apart
  }
  // The association difference flips the final rounding often (both
  // implementations are ~1 ulp accurate, rounded differently) but never by
  // more than one ulp — the realistic cross-vendor libm relationship.
  EXPECT_GT(diff_exp, 0);
  EXPECT_GT(diff_log, 0);
  EXPECT_LT(diff_exp, kTrials);
  EXPECT_LT(diff_log, kTrials);
}

TEST(ArcTrig, AccuracyVsHost) {
  support::Rng rng(34);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    ASSERT_LE(ulps(core::atan64(x), std::atan(x)), 3.0) << "x=" << x;
  }
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    ASSERT_LE(ulps(core::asin64(x), std::asin(x)), 4.0) << "x=" << x;
    ASSERT_LE(ulps(core::acos64(x), std::acos(x)), 4.0) << "x=" << x;
  }
  EXPECT_LE(ulps(core::atan64(1e300), std::atan(1e300)), 2.0);
  EXPECT_TRUE(fp::is_nan_bits(core::asin64(1.5)));
  EXPECT_TRUE(fp::is_nan_bits(core::acos64(-1.0000001)));
  EXPECT_EQ(core::acos64(1.0), 0.0);
}

TEST(Tanh, AccuracyAndSaturation) {
  support::Rng rng(35);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-25.0, 25.0);
    ASSERT_LE(ulps(core::tanh64(x), std::tanh(x)), 8.0) << "x=" << x;
  }
  EXPECT_EQ(core::tanh64(1000.0), 1.0);
  EXPECT_EQ(core::tanh64(-1000.0), -1.0);
  EXPECT_EQ(core::tanh64(fp::infinity<double>()), 1.0);
}

TEST(Pow, IEEESpecialCases) {
  const double inf = fp::infinity<double>();
  const double nan = fp::quiet_nan<double>();
  EXPECT_EQ(core::pow64(5.0, 0.0), 1.0);
  EXPECT_EQ(core::pow64(nan, 0.0), 1.0);
  EXPECT_EQ(core::pow64(1.0, nan), 1.0);
  EXPECT_TRUE(fp::is_nan_bits(core::pow64(nan, 2.0)));
  EXPECT_TRUE(fp::is_nan_bits(core::pow64(-2.0, 0.5)));   // negative, non-int
  EXPECT_EQ(core::pow64(-2.0, 3.0), -8.0);                // odd integer
  EXPECT_EQ(core::pow64(-2.0, 2.0), 4.0);
  EXPECT_EQ(core::pow64(0.0, 3.0), 0.0);
  EXPECT_TRUE(fp::sign_bit(core::pow64(-0.0, 3.0)));
  EXPECT_TRUE(fp::is_inf_bits(core::pow64(0.0, -2.0)));
  EXPECT_EQ(core::pow64(0.5, inf), 0.0);
  EXPECT_TRUE(fp::is_inf_bits(core::pow64(0.5, -inf)));
  EXPECT_EQ(core::pow64(-1.0, inf), 1.0);
  EXPECT_EQ(core::pow64(-inf, -3.0), -0.0);
  EXPECT_TRUE(fp::is_inf_bits(core::pow64(2.0, 1e300)));
  EXPECT_EQ(core::pow64(2.0, -1e300), 0.0);
}

TEST(Pow, AccuracyVsHost) {
  support::Rng rng(36);
  for (int i = 0; i < 1000; ++i) {
    const double x = std::exp(rng.uniform(-20.0, 20.0));
    const double y = rng.uniform(-30.0, 30.0);
    const double mine = core::pow64(x, y);
    const double ref = std::pow(x, y);
    ASSERT_LE(std::fabs(mine - ref), 1e-11 * std::fabs(ref))
        << "x=" << x << " y=" << y;
  }
}

// ---------------------------------------------------------------------------
// Exact generic ops
// ---------------------------------------------------------------------------

TEST(FmodExact, MatchesHostEverywhere) {
  support::Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    const double x = fp::from_bits<double>(rng.next());
    const double y = fp::from_bits<double>(rng.next());
    if (fp::is_nan_bits(x) || fp::is_nan_bits(y)) continue;
    const double mine = core::fmod_exact(x, y);
    const double ref = std::fmod(x, y);
    if (fp::is_nan_bits(ref)) {
      EXPECT_TRUE(fp::is_nan_bits(mine)) << x << " " << y;
    } else {
      EXPECT_EQ(fp::to_bits(mine), fp::to_bits(ref)) << x << " " << y;
    }
  }
}

TEST(FmodExact, Float32MatchesHost) {
  support::Rng rng(38);
  for (int i = 0; i < 5000; ++i) {
    const float x = fp::from_bits<float>(static_cast<std::uint32_t>(rng.next()));
    const float y = fp::from_bits<float>(static_cast<std::uint32_t>(rng.next()));
    if (fp::is_nan_bits(x) || fp::is_nan_bits(y)) continue;
    const float mine = core::fmod_exact(x, y);
    const float ref = std::fmod(x, y);
    if (fp::is_nan_bits(ref)) {
      EXPECT_TRUE(fp::is_nan_bits(mine));
    } else {
      EXPECT_EQ(fp::to_bits(mine), fp::to_bits(ref)) << x << " " << y;
    }
  }
}

TEST(FmodExact, SubnormalOperands) {
  EXPECT_EQ(core::fmod_exact(1e-310, 3e-320), std::fmod(1e-310, 3e-320));
  EXPECT_EQ(core::fmod_exact(5e-324, 5e-324), 0.0);
  EXPECT_EQ(core::fmod_exact(1.0, 5e-324), std::fmod(1.0, 5e-324));
}

TEST(RoundingOps, MatchHostOnSweep) {
  support::Rng rng(39);
  for (int i = 0; i < 5000; ++i) {
    const double x = fp::from_bits<double>(rng.next());
    if (fp::is_nan_bits(x)) continue;
    EXPECT_EQ(fp::to_bits(core::ceil_exact(x)), fp::to_bits(std::ceil(x)));
    EXPECT_EQ(fp::to_bits(core::floor_exact(x)), fp::to_bits(std::floor(x)));
    EXPECT_EQ(fp::to_bits(core::trunc_exact(x)), fp::to_bits(std::trunc(x)));
  }
}

TEST(RoundingOps, SignedZeroAndTinies) {
  EXPECT_TRUE(fp::sign_bit(core::ceil_exact(-0.5)));  // ceil(-0.5) == -0.0
  EXPECT_EQ(core::ceil_exact(1e-310), 1.0);
  EXPECT_EQ(core::floor_exact(-1e-310), -1.0);
  EXPECT_EQ(core::trunc_exact(-1e-310), -0.0);
  EXPECT_TRUE(fp::sign_bit(core::trunc_exact(-1e-310)));
}

TEST(MinMax, IEEESemantics) {
  const double nan = fp::quiet_nan<double>();
  EXPECT_EQ(core::fmin_ieee(nan, 2.0), 2.0);
  EXPECT_EQ(core::fmin_ieee(2.0, nan), 2.0);
  EXPECT_TRUE(fp::is_nan_bits(core::fmin_ieee(nan, nan)));
  EXPECT_EQ(core::fmax_ieee(nan, 2.0), 2.0);
  EXPECT_TRUE(fp::sign_bit(core::fmin_ieee(0.0, -0.0)));
  EXPECT_FALSE(fp::sign_bit(core::fmax_ieee(0.0, -0.0)));
  EXPECT_EQ(core::fmin_ieee(1.0f, 2.0f), 1.0f);
}

TEST(ScaleByPow2, SubnormalRoundingIsSingle) {
  // 2^-1080 scaled into range and back.
  EXPECT_EQ(core::scale_by_pow2(1.5, -1074), std::ldexp(1.5, -1074));
  EXPECT_EQ(core::scale_by_pow2(1.0, -1100), 0.0);
  EXPECT_TRUE(fp::is_inf_bits(core::scale_by_pow2(1.0, 2000)));
  EXPECT_EQ(core::scale_by_pow2(0.75, 3), 6.0);
  support::Rng rng(40);
  for (int i = 0; i < 2000; ++i) {
    const double m = rng.uniform(1.0, 2.0);
    const int k = static_cast<int>(rng.range(-1100, 1100));
    EXPECT_EQ(core::scale_by_pow2(m, k), std::ldexp(m, k)) << m << " " << k;
  }
}

// ---------------------------------------------------------------------------
// Vendor libraries: documented agreement & divergence
// ---------------------------------------------------------------------------

TEST(VendorLibs, RegistryFindsAll) {
  for (const char* name :
       {"nv-libdevice-sim", "nv-fastmath-sim", "amd-ocml-sim",
        "amd-ocml-native-sim", "hip-cuda-compat-sim",
        "hip-cuda-compat-native-sim"}) {
    ASSERT_NE(find_mathlib(name), nullptr) << name;
    EXPECT_EQ(find_mathlib(name)->name(), name);
  }
  EXPECT_EQ(find_mathlib("bogus"), nullptr);
}

TEST(VendorLibs, SymbolNames) {
  using ir::MathFn;
  using ir::Precision;
  EXPECT_EQ(nv_libdevice().symbol(MathFn::Fmod, Precision::FP64), "__nv_fmod");
  EXPECT_EQ(nv_libdevice().symbol(MathFn::Cos, Precision::FP32), "__nv_cosf");
  EXPECT_EQ(amd_ocml().symbol(MathFn::Fmod, Precision::FP64), "__ocml_fmod_f64");
  EXPECT_EQ(nv_fast().symbol(MathFn::Sin, Precision::FP32), "__sinf");
  EXPECT_EQ(amd_ocml_native().symbol(MathFn::Cos, Precision::FP32),
            "__ocml_native_cos_f32");
  EXPECT_EQ(hip_cuda_compat().symbol(MathFn::Fmod, Precision::FP64),
            "__hip_cuda_fmod_f64");
  EXPECT_EQ(hip_cuda_compat().symbol(MathFn::Cos, Precision::FP64),
            "__ocml_cos_f64");
}

TEST(VendorLibs, CaseStudy1FmodDivergesOnExtremeGap) {
  using ir::MathFn;
  const double x = 1.5917195493481116e+289;
  const double y = 1.5793e-307;
  const double nv = nv_libdevice().call64(MathFn::Fmod, x, y);
  const double amd = amd_ocml().call64(MathFn::Fmod, x, y);
  // AMD side is the exact remainder (matches the paper's hipcc output).
  EXPECT_EQ(amd, 7.1923082856620736e-309);
  EXPECT_NE(fp::to_bits(nv), fp::to_bits(amd));
  // Ordinary gaps agree bit-for-bit.
  for (double xx : {10.3, 1e10, -3.7e5}) {
    for (double yy : {3.1, 0.007, 19.5}) {
      EXPECT_EQ(fp::to_bits(nv_libdevice().call64(MathFn::Fmod, xx, yy)),
                fp::to_bits(amd_ocml().call64(MathFn::Fmod, xx, yy)));
    }
  }
}

TEST(VendorLibs, CaseStudy2CeilQuirk) {
  using ir::MathFn;
  EXPECT_EQ(nv_libdevice().call64(MathFn::Ceil, 1.5955e-125), 0.0);
  EXPECT_EQ(amd_ocml().call64(MathFn::Ceil, 1.5955e-125), 1.0);
  EXPECT_EQ(nv_libdevice().call64(MathFn::Floor, -1e-200), -0.0);
  EXPECT_EQ(amd_ocml().call64(MathFn::Floor, -1e-200), -1.0);
  // Quirk only below 2^-126; ordinary values agree.
  EXPECT_EQ(nv_libdevice().call64(MathFn::Ceil, 1e-20), 1.0);
  EXPECT_EQ(nv_libdevice().call64(MathFn::Ceil, 2.7), 3.0);
  EXPECT_EQ(nv_libdevice().call64(MathFn::Floor, -2.7), -3.0);
}

TEST(VendorLibs, CoshOverflowBand) {
  using ir::MathFn;
  // NV overflows with exp at ~709.78; AMD stays finite until ~710.47.
  EXPECT_TRUE(fp::is_inf_bits(nv_libdevice().call64(MathFn::Cosh, 710.0)));
  EXPECT_TRUE(fp::is_finite_bits(amd_ocml().call64(MathFn::Cosh, 710.0)));
  EXPECT_TRUE(fp::is_inf_bits(amd_ocml().call64(MathFn::Cosh, 711.0)));
  // Common range agrees within the exp schemes' single-ulp envelope.
  for (double x : {0.5, 5.0, 100.0, 700.0})
    EXPECT_LE(fp::ulp_distance(nv_libdevice().call64(MathFn::Cosh, x),
                               amd_ocml().call64(MathFn::Cosh, x)),
              2u);
}

TEST(VendorLibs, SharedFunctionsAgreeBitForBit) {
  using ir::MathFn;
  support::Rng rng(41);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-30.0, 30.0);
    for (MathFn fn : {MathFn::Sqrt, MathFn::Fabs, MathFn::Atan, MathFn::Trunc}) {
      EXPECT_EQ(fp::to_bits(nv_libdevice().call64(fn, std::fabs(x))),
                fp::to_bits(amd_ocml().call64(fn, std::fabs(x))));
    }
  }
}

TEST(VendorLibs, CompatFmodFlushesSubnormalResults) {
  using ir::MathFn;
  // Find a pair with a subnormal exact remainder.
  const double x = 1.0;
  const double y = 1.1e-308;
  const double exact = core::fmod_exact(x, y);
  ASSERT_TRUE(fp::is_subnormal_bits(exact))
      << "test premise: remainder must be subnormal, got " << exact;
  EXPECT_EQ(hip_cuda_compat().call64(MathFn::Fmod, x, y), 0.0);
  EXPECT_EQ(amd_ocml().call64(MathFn::Fmod, x, y), exact);
}

TEST(VendorLibs, CompatPowDriftsFromOcml) {
  using ir::MathFn;
  int diffs = 0;
  support::Rng rng(42);
  for (int i = 0; i < 300; ++i) {
    const double x = std::exp(rng.uniform(-10.0, 10.0));
    const double y = rng.uniform(-60.0, 60.0);
    if (hip_cuda_compat().call64(MathFn::Pow, x, y) !=
        amd_ocml().call64(MathFn::Pow, x, y))
      ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(FastLibs, ApproximationsAreClose) {
  using ir::MathFn;
  for (float x : {0.3f, 1.0f, 3.0f, 10.0f, 80.0f}) {
    const float nv = nv_fast().call32(MathFn::Sin, x);
    const float amd = amd_ocml_native().call32(MathFn::Sin, x);
    const float ref = static_cast<float>(std::sin(static_cast<double>(x)));
    EXPECT_NEAR(nv, ref, 2e-4f + 2e-5f * std::fabs(ref)) << x;
    EXPECT_NEAR(amd, ref, 2e-4f + 2e-5f * std::fabs(ref)) << x;
  }
  for (float x : {-5.0f, 0.5f, 4.0f, 30.0f}) {
    const float ref = static_cast<float>(std::exp(static_cast<double>(x)));
    EXPECT_NEAR(nv_fast().call32(MathFn::Exp, x), ref, 2e-5f * ref) << x;
    EXPECT_NEAR(amd_ocml_native().call32(MathFn::Exp, x), ref, 4e-5f * ref) << x;
  }
  for (float x : {0.1f, 0.9f, 2.0f, 1000.0f}) {
    const float ref = static_cast<float>(std::log(static_cast<double>(x)));
    EXPECT_NEAR(nv_fast().call32(MathFn::Log, x), ref, 3e-6f + 3e-6f * std::fabs(ref));
    EXPECT_NEAR(amd_ocml_native().call32(MathFn::Log, x), ref,
                3e-5f + 3e-5f * std::fabs(ref));
  }
}

TEST(FastLibs, VendorsDisagreeOnMostLiveArguments) {
  using ir::MathFn;
  support::Rng rng(43);
  int diffs = 0;
  const int kTrials = 500;
  for (int i = 0; i < kTrials; ++i) {
    const float x = static_cast<float>(rng.uniform(0.1, 50.0));
    if (nv_fast().call32(MathFn::Exp, x) !=
        amd_ocml_native().call32(MathFn::Exp, x))
      ++diffs;
  }
  EXPECT_GT(diffs, kTrials / 2);  // the FP32 fast-math explosion's engine
}

TEST(FastLibs, Fp64EntriesMatchDefaultLibraries) {
  using ir::MathFn;
  // Fast math only swaps FP32 entry points on both real toolchains.
  for (double x : {0.5, 3.0, 100.0, -7.5}) {
    EXPECT_EQ(fp::to_bits(nv_fast().call64(MathFn::Exp, x)),
              fp::to_bits(nv_libdevice().call64(MathFn::Exp, x)));
    EXPECT_EQ(fp::to_bits(amd_ocml_native().call64(MathFn::Cos, x)),
              fp::to_bits(amd_ocml().call64(MathFn::Cos, x)));
  }
}

TEST(Fp32Trig, NvFloatKernelVsAmdPromotion) {
  using ir::MathFn;
  support::Rng rng(44);
  int diffs = 0;
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float nv = nv_libdevice().call32(MathFn::Sin, x);
    const float amd = amd_ocml().call32(MathFn::Sin, x);
    const float ref = static_cast<float>(std::sin(static_cast<double>(x)));
    ASSERT_LE(fp::ulp_distance(nv, ref), 2u) << x;   // NV ~1-2 ulp
    ASSERT_LE(fp::ulp_distance(amd, ref), 1u) << x;  // AMD correctly rounded-ish
    if (nv != amd) ++diffs;
  }
  EXPECT_GT(diffs, 0);  // the FP32 O0 Num-vs-Num baseline
}

// ---------------------------------------------------------------------------
// fmod_exact: the chunked long division must match the textbook one-bit
// shift-subtract loop for every operand pair, most importantly the
// extreme-exponent-gap pairs the campaign's input classes produce.
// ---------------------------------------------------------------------------

template <typename T>
T fmod_bit_loop_reference(T x, T y) {
  using Tr = fp::FloatTraits<T>;
  using B = typename Tr::Bits;
  const B uy_abs = fp::to_bits(y) & ~Tr::sign_mask;
  const B sign = fp::to_bits(x) & Tr::sign_mask;
  B ux_abs = fp::to_bits(x) & ~Tr::sign_mask;
  if (uy_abs == 0 || ux_abs >= Tr::exponent_mask || uy_abs > Tr::exponent_mask)
    return fp::quiet_nan<T>();
  if (ux_abs < uy_abs) return x;
  if (ux_abs == uy_abs) return fp::copysign_bits(T(0), x);
  const auto decompose = [](B v, int& e) -> B {
    e = static_cast<int>(v >> Tr::mantissa_bits);
    B m = v & Tr::mantissa_mask;
    if (e == 0) {
      const int shift = Tr::mantissa_bits + 1 -
                        (std::numeric_limits<B>::digits - std::countl_zero(m));
      m <<= shift;
      e = 1 - shift;
    } else {
      m |= (B{1} << Tr::mantissa_bits);
    }
    return m;
  };
  int ex, ey;
  B mx = decompose(ux_abs, ex);
  const B my = decompose(uy_abs, ey);
  for (; ex > ey; --ex) {
    if (mx >= my) mx -= my;
    mx <<= 1;
  }
  if (mx >= my) mx -= my;
  if (mx == 0) return fp::copysign_bits(T(0), x);
  const int lead = std::numeric_limits<B>::digits - 1 - std::countl_zero(mx);
  const int shift = Tr::mantissa_bits - lead;
  mx <<= shift;
  ex -= shift;
  B out;
  if (ex > 0)
    out = (mx - (B{1} << Tr::mantissa_bits)) | (static_cast<B>(ex) << Tr::mantissa_bits);
  else
    out = mx >> (1 - ex);
  return fp::from_bits<T>(out | sign);
}

template <typename T>
void check_fmod_against_reference() {
  support::Rng rng(0xF40Du);
  using B = typename fp::FloatTraits<T>::Bits;
  for (int i = 0; i < 20000; ++i) {
    // Uniform over raw bit patterns: covers subnormals, huge/tiny exponent
    // gaps, zeros, infinities and NaNs.
    const T x = fp::from_bits<T>(static_cast<B>(rng.next()));
    const T y = fp::from_bits<T>(static_cast<B>(rng.next()));
    const T got = core::fmod_exact(x, y);
    const T ref = fmod_bit_loop_reference(x, y);
    ASSERT_EQ(fp::to_bits(got), fp::to_bits(ref))
        << fp::encode_bits(x) << " fmod " << fp::encode_bits(y);
  }
  // The paper's Case Study 1 pair (1980-bit gap) and directed extremes.
  const T cases[][2] = {
      {static_cast<T>(1.59e+289), static_cast<T>(1.58e-307)},
      {std::numeric_limits<T>::max(), std::numeric_limits<T>::denorm_min()},
      {static_cast<T>(-1.5402e-4), static_cast<T>(1.50107438058625021e-308)},
      {static_cast<T>(7.0), static_cast<T>(3.0)},
  };
  for (const auto& c : cases) {
    const T got = core::fmod_exact(c[0], c[1]);
    const T ref = fmod_bit_loop_reference(c[0], c[1]);
    ASSERT_EQ(fp::to_bits(got), fp::to_bits(ref))
        << fp::encode_bits(c[0]) << " fmod " << fp::encode_bits(c[1]);
  }
}

TEST(FmodExact, ChunkedDivisionMatchesBitLoopReference64) {
  check_fmod_against_reference<double>();
}

TEST(FmodExact, ChunkedDivisionMatchesBitLoopReference32) {
  check_fmod_against_reference<float>();
}

}  // namespace
