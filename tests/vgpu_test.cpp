// Tests for the virtual GPU: FPU semantics (with exception tracking),
// kernel interpretation, argument handling, and pseudo-assembly output.

#include <gtest/gtest.h>

#include <cmath>

#include "fp/bits.hpp"
#include "ir/builder.hpp"
#include "opt/pipeline.hpp"
#include "vgpu/args.hpp"
#include "vgpu/device.hpp"
#include "vgpu/fpu.hpp"
#include "vgpu/interp.hpp"
#include "vgpu/pseudo_asm.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::ir;
using namespace gpudiff::vgpu;

// ---------------------------------------------------------------------------
// Fpu
// ---------------------------------------------------------------------------

struct FpuCase {
  const char* name;
  double a, b;
  char op;  // '+', '-', '*', '/'
  double expected;           // NaN compares via isnan
  std::uint8_t expected_bits;  // exception flags that must be raised
};

class FpuSemantics : public ::testing::TestWithParam<FpuCase> {};

TEST_P(FpuSemantics, OperationAndFlags) {
  const FpuCase& c = GetParam();
  fp::FpEnv env;
  fp::ExceptionFlags flags;
  Fpu<double> fpu(env, flags);
  double r = 0;
  switch (c.op) {
    case '+': r = fpu.add(c.a, c.b); break;
    case '-': r = fpu.sub(c.a, c.b); break;
    case '*': r = fpu.mul(c.a, c.b); break;
    case '/': r = fpu.div(c.a, c.b); break;
  }
  if (std::isnan(c.expected)) {
    EXPECT_TRUE(std::isnan(r)) << c.name;
  } else {
    EXPECT_EQ(fp::to_bits(r), fp::to_bits(c.expected)) << c.name;
  }
  EXPECT_EQ(flags.raw() & c.expected_bits, c.expected_bits)
      << c.name << ": got " << flags.to_string();
}

const double kInf = std::numeric_limits<double>::infinity();
const double kNaN = std::numeric_limits<double>::quiet_NaN();

INSTANTIATE_TEST_SUITE_P(
    Cases, FpuSemantics,
    ::testing::Values(
        FpuCase{"exact add", 1.0, 2.0, '+', 3.0, 0},
        FpuCase{"inexact add", 1.0, 1e-30, '+', 1.0 + 1e-30, fp::kInexact},
        FpuCase{"overflow add", 1.7e308, 1.7e308, '+', kInf,
                fp::kOverflow | fp::kInexact},
        FpuCase{"inf minus inf", kInf, kInf, '-', kNaN, fp::kInvalid},
        FpuCase{"exact mul", 1.5, 2.0, '*', 3.0, 0},
        FpuCase{"overflow mul", 1e200, 1e200, '*', kInf,
                fp::kOverflow | fp::kInexact},
        FpuCase{"underflow mul", 1e-200, 1e-200, '*', 0.0, fp::kUnderflow},
        FpuCase{"subnormal mul", 1e-160, 1e-160, '*', 1e-320, fp::kUnderflow},
        FpuCase{"zero times inf", 0.0, kInf, '*', kNaN, fp::kInvalid},
        FpuCase{"exact div", 6.0, 3.0, '/', 2.0, 0},
        FpuCase{"div by zero", 1.0, 0.0, '/', kInf, fp::kDivideByZero},
        FpuCase{"neg div by zero", -1.0, 0.0, '/', -kInf, fp::kDivideByZero},
        FpuCase{"zero over zero", 0.0, 0.0, '/', kNaN, fp::kInvalid},
        FpuCase{"inf over inf", kInf, kInf, '/', kNaN, fp::kInvalid}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (ch == ' ') ch = '_';
      return n;
    });

TEST(Fpu, FtzAndDazFloat) {
  fp::FpEnv env;
  env.ftz32 = true;
  env.daz32 = true;
  fp::ExceptionFlags flags;
  Fpu<float> fpu(env, flags);
  // DAZ: subnormal input treated as zero -> 0 * 1e30 = 0 (not ~1e-15).
  EXPECT_EQ(fpu.mul(1e-44f, 1e30f), 0.0f);
  // FTZ: subnormal result flushed.
  EXPECT_EQ(fpu.mul(1e-30f, 1e-15f), 0.0f);
  EXPECT_TRUE(flags.underflow());
  // Sign preserved by flush.
  EXPECT_TRUE(fp::sign_bit(fpu.mul(-1e-30f, 1e-15f)));
}

TEST(Fpu, Div32Modes) {
  fp::ExceptionFlags flags;
  // NvApprox: |denominator| > 2^126 -> signed zero.
  fp::FpEnv nv_env;
  nv_env.div32 = fp::Div32Mode::NvApprox;
  Fpu<float> nv(nv_env, flags);
  EXPECT_EQ(nv.div(1.0f, 1.5e38f), 0.0f);
  EXPECT_TRUE(fp::sign_bit(nv.div(-1.0f, 1.5e38f)));
  // AmdApprox: same input stays a (tiny) number.
  fp::FpEnv amd_env;
  amd_env.div32 = fp::Div32Mode::AmdApprox;
  Fpu<float> amd(amd_env, flags);
  EXPECT_GT(amd.div(1.0f, 1.5e38f), 0.0f);
  // Both approximate modes stay close to IEEE for ordinary values.
  fp::FpEnv ieee_env;
  Fpu<float> ieee(ieee_env, flags);
  const float x = 7.3f, y = 1.9f;
  EXPECT_NEAR(nv.div(x, y), ieee.div(x, y), 1e-6f);
  EXPECT_NEAR(amd.div(x, y), ieee.div(x, y), 1e-6f);
}

TEST(Fpu, FmaSingleRounding) {
  fp::FpEnv env;
  fp::ExceptionFlags flags;
  Fpu<double> fpu(env, flags);
  const double a = 1.0 + 0x1p-52;
  const double b = 1.0 - 0x1p-52;
  EXPECT_EQ(fpu.fma_op(a, b, -1.0), -0x1p-104);
}

// ---------------------------------------------------------------------------
// KernelArgs
// ---------------------------------------------------------------------------

Program sample_program() {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  const int x = b.add_scalar_param();
  const int arr = b.add_array_param();
  b.begin_for(n);
  b.assign_comp(AssignOp::Add, make_array(A, arr, make_loop_var(A, 0)));
  b.assign_comp(AssignOp::Add, make_param(A, x));
  b.end_block();
  return b.build();
}

TEST(KernelArgs, VarityStringFormat) {
  const Program p = sample_program();
  KernelArgs args;
  args.fp = {0.0, 0.0, -1.5955e-125, 2.5};
  args.ints = {0, 5, 0, 0};
  const std::string s = args.to_varity_string(p);
  EXPECT_EQ(s, "+0.0 5 -1.59549999999999999E-125 +2.50000000000000000E+00");
}

TEST(KernelArgs, JsonRoundTrip) {
  const Program p = sample_program();
  KernelArgs args;
  args.fp = {-0.0, 0.0, 1e-310, 3.5};
  args.ints = {0, 7, 0, 0};
  const KernelArgs back = KernelArgs::from_json(args.to_json(p), p);
  EXPECT_EQ(back, args);
  // Signed zero preserved.
  EXPECT_TRUE(fp::sign_bit(back.fp[0]));
}

TEST(KernelArgs, JsonRejectsWrongArity) {
  const Program p = sample_program();
  support::Json arr = support::Json::array();
  arr.push_back(support::Json("64:0000000000000000"));
  EXPECT_THROW(KernelArgs::from_json(arr, p), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

opt::Executable compile_o0(const Program& p,
                           opt::Toolchain t = opt::Toolchain::Nvcc) {
  return opt::compile(p, {t, opt::OptLevel::O0, false});
}

TEST(Interp, LoopAccumulation) {
  const Program p = sample_program();
  KernelArgs args;
  args.fp = {1.0, 0.0, 0.25, 2.0};  // comp=1, x=0.25, array filled with 2.0
  args.ints = {0, 4, 0, 0};
  const RunResult r = run_kernel(compile_o0(p), args);
  // comp = 1 + 4*(2.0 + 0.25) = 10
  EXPECT_EQ(r.value, 10.0);
  EXPECT_EQ(r.printed(), "10");
  EXPECT_GT(r.op_count, 0u);
}

TEST(Interp, ZeroTripLoopSkipsBody) {
  const Program p = sample_program();
  KernelArgs args;
  args.fp = {7.0, 0.0, 1.0, 1.0};
  args.ints = {0, 0, 0, 0};
  EXPECT_EQ(run_kernel(compile_o0(p), args).value, 7.0);
}

TEST(Interp, ArrayStoreAndLoad) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  const int arr = b.add_array_param();
  b.begin_for(n);
  b.store_array(arr, make_loop_var(A, 0),
                make_bin(A, BinOp::Mul, make_literal(A, 2.0),
                         make_array(A, arr, make_loop_var(A, 0))));
  b.assign_comp(AssignOp::Add, make_array(A, arr, make_loop_var(A, 0)));
  b.end_block();
  const Program p = b.build();
  KernelArgs args;
  args.fp = {0.0, 0.0, 3.0};
  args.ints = {0, 2, 0};
  // Each iteration doubles its element then adds it: 6 + 6 = 12.
  EXPECT_EQ(run_kernel(compile_o0(p), args).value, 12.0);
}

TEST(Interp, TempsAndCompoundOps) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  const int t = b.decl_temp(make_bin(A, BinOp::Add, make_param(A, x), make_literal(A, 1.0)));
  b.assign_comp(AssignOp::Set, make_temp(A, t));
  b.assign_comp(AssignOp::Mul, make_literal(A, 3.0));
  b.assign_comp(AssignOp::Div, make_literal(A, 2.0));
  b.assign_comp(AssignOp::Sub, make_literal(A, 0.5));
  const Program p = b.build();
  KernelArgs args;
  args.fp = {99.0, 3.0};  // comp ignored by Set; x=3
  args.ints = {0, 0};
  // ((3+1) * 3) / 2 - 0.5 = 5.5
  EXPECT_EQ(run_kernel(compile_o0(p), args).value, 5.5);
}

TEST(Interp, IfConditionSemanticsWithNaN) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.begin_if(make_cmp(A, CmpOp::Ge, make_param(A, x), make_literal(A, 0.0)));
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  b.end_block();
  b.begin_if(make_not(A, make_cmp(A, CmpOp::Ge, make_param(A, x), make_literal(A, 0.0))));
  b.assign_comp(AssignOp::Add, make_literal(A, 2.0));
  b.end_block();
  const Program p = b.build();
  KernelArgs args;
  args.fp = {0.0, fp::quiet_nan<double>()};
  args.ints = {0, 0};
  // NaN >= 0 is false; !(NaN >= 0) is true -> only +2 fires.
  EXPECT_EQ(run_kernel(compile_o0(p), args).value, 2.0);
}

TEST(Interp, BooleanOperatorsShortCircuitValue) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.begin_if(make_bool(A, BoolOp::Or,
                       make_cmp(A, CmpOp::Lt, make_param(A, x), make_literal(A, 0.0)),
                       make_cmp(A, CmpOp::Gt, make_param(A, x), make_literal(A, 10.0))));
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  b.end_block();
  const Program p = b.build();
  KernelArgs inside;
  inside.fp = {0.0, 5.0};
  inside.ints = {0, 0};
  EXPECT_EQ(run_kernel(compile_o0(p), inside).value, 0.0);
  KernelArgs outside;
  outside.fp = {0.0, -1.0};
  outside.ints = {0, 0};
  EXPECT_EQ(run_kernel(compile_o0(p), outside).value, 1.0);
}

TEST(Interp, Fp32ExecutesInSinglePrecision) {
  ProgramBuilder b(Precision::FP32);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(AssignOp::Add, make_bin(A, BinOp::Add, make_param(A, x), make_literal(A, 1.0)));
  const Program p = b.build();
  KernelArgs args;
  args.fp = {0.0, static_cast<double>(1e-10f)};
  args.ints = {0, 0};
  // In binary32, 1e-10 + 1 rounds to exactly 1.
  const RunResult r = run_kernel(compile_o0(p), args);
  EXPECT_EQ(r.value, 1.0);
  EXPECT_EQ(r.printed(), "1");
}

TEST(Interp, ExceptionFlagsSurface) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(AssignOp::Add, make_bin(A, BinOp::Div, make_literal(A, 1.0), make_param(A, x)));
  const Program p = b.build();
  KernelArgs args;
  args.fp = {0.0, 0.0};
  args.ints = {0, 0};
  const RunResult r = run_kernel(compile_o0(p), args);
  EXPECT_TRUE(std::isinf(r.value));
  EXPECT_TRUE(r.flags.divide_by_zero());
}

TEST(Interp, MathCallGoesThroughBoundLibrary) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_call(A, MathFn::Ceil, make_literal(A, 1.5955e-125)));
  const Program p = b.build();
  KernelArgs args;
  args.fp = {0.0};
  args.ints = {0};
  EXPECT_EQ(run_kernel(compile_o0(p, opt::Toolchain::Nvcc), args).value, 0.0);
  EXPECT_EQ(run_kernel(compile_o0(p, opt::Toolchain::Hipcc), args).value, 1.0);
}

TEST(Interp, ArgumentMismatchThrows) {
  const Program p = sample_program();
  KernelArgs bad;
  bad.fp = {1.0};
  bad.ints = {0};
  EXPECT_THROW(run_kernel(compile_o0(p), bad), std::runtime_error);
}

TEST(Interp, DeterministicAcrossRuns) {
  const Program p = sample_program();
  KernelArgs args;
  args.fp = {0.1, 0.0, 1e300, -2e-308};
  args.ints = {0, 6, 0, 0};
  const auto exe = compile_o0(p);
  const auto r1 = run_kernel(exe, args);
  const auto r2 = run_kernel(exe, args);
  EXPECT_EQ(r1.value_bits, r2.value_bits);
  EXPECT_EQ(r1.op_count, r2.op_count);
}

// ---------------------------------------------------------------------------
// Devices & pseudo-assembly
// ---------------------------------------------------------------------------

TEST(Device, DescriptorsPairToolchains) {
  EXPECT_EQ(device_for(opt::Toolchain::Nvcc).name, "V100-sim");
  EXPECT_EQ(device_for(opt::Toolchain::Hipcc).name, "MI250X-sim");
  EXPECT_EQ(nvidia_v100_sim().cluster, "Lassen");
  EXPECT_EQ(amd_mi250x_sim().cluster, "Tioga");
}

TEST(PseudoAsm, ShowsLibrarySymbolsPerVendor) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(AssignOp::Add, make_call(A, MathFn::Fmod, make_param(A, x), make_literal(A, 2.0)));
  const Program p = b.build();
  const std::string nv =
      disassemble(opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O0, false}));
  const std::string amd =
      disassemble(opt::compile(p, {opt::Toolchain::Hipcc, opt::OptLevel::O0, false}));
  EXPECT_NE(nv.find("__nv_fmod"), std::string::npos);
  EXPECT_NE(nv.find("PTX-sim"), std::string::npos);
  EXPECT_NE(amd.find("__ocml_fmod_f64"), std::string::npos);
  EXPECT_NE(amd.find("GCN-sim"), std::string::npos);
}

TEST(PseudoAsm, ShowsFmaAfterContraction) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Add, make_bin(A, BinOp::Mul, make_param(A, x), make_param(A, x)),
                         make_literal(A, 1.0)));
  const Program p = b.build();
  const std::string o0 =
      disassemble(opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O0, false}));
  EXPECT_EQ(o0.find("fma.rn.f64"), std::string::npos);
  const std::string o1 =
      disassemble(opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O1, false}));
  EXPECT_NE(o1.find("fma.rn.f64"), std::string::npos);
}

TEST(PseudoAsm, MarksIfConversion) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.begin_if(make_cmp(A, CmpOp::Gt, make_param(A, x), make_literal(A, 0.0)));
  b.assign_comp(AssignOp::Add, make_param(A, x));
  b.end_block();
  const Program p = b.build();
  const std::string amd =
      disassemble(opt::compile(p, {opt::Toolchain::Hipcc, opt::OptLevel::O1, false}));
  EXPECT_NE(amd.find("if-conversion"), std::string::npos);
  const std::string nv =
      disassemble(opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O1, false}));
  EXPECT_EQ(nv.find("if-conversion"), std::string::npos);
}

TEST(PseudoAsm, LoopsRenderLabels) {
  const Program p = sample_program();
  const std::string nv =
      disassemble(opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O0, false}));
  EXPECT_NE(nv.find("LBB_0"), std::string::npos);
  const std::string amd =
      disassemble(opt::compile(p, {opt::Toolchain::Hipcc, opt::OptLevel::O0, false}));
  EXPECT_NE(amd.find("BB_0"), std::string::npos);
  EXPECT_NE(amd.find("s_endpgm"), std::string::npos);
}

}  // namespace
