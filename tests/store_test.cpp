// Results-store tests: ingest/query/diff determinism, on-disk format
// lock, corruption hardening, and the serve daemon under concurrency and
// process death.
//
// The load-bearing properties mirror the campaign invariants one layer
// up: equal store contents answer every query byte-identically regardless
// of ingest order, thread timing or server restarts — the SIGKILL drill
// drives the real gpudiff-serve binary (via GPUDIFF_SERVE_BIN, wired by
// CMake) so recovery runs the actual startup path.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/checkpoint.hpp"
#include "diff/campaign.hpp"
#include "diff/report.hpp"
#include "net/wire.hpp"
#include "store/serve.hpp"
#include "store/store.hpp"
#include "support/json.hpp"

namespace {

using namespace gpudiff;
using support::Json;

const char* kGoldenReport =
    GPUDIFF_SOURCE_DIR "/tests/golden/campaign_p60_i5_s1234_fp64.json";
const char* kGoldenPopulation =
    GPUDIFF_SOURCE_DIR "/tests/golden/store_pop_p60_i5_s1234_fp64.json";

/// A scratch directory removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
  std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

Json golden_report() {
  return Json::parse(support::read_file(kGoldenReport));
}

void write_json(const std::string& path, const Json& j) {
  support::write_file(path, j.dump(1) + "\n");
}

/// A synthetic Google-Benchmark JSON file.
Json bench_file(const std::vector<std::pair<std::string, double>>& entries,
                const std::string& unit = "ns") {
  Json j = Json::object();
  j["context"] = Json::object();
  Json arr = Json::array();
  for (const auto& [name, t] : entries) {
    Json b = Json::object();
    b["name"] = name;
    b["run_type"] = "iteration";
    b["iterations"] = 100;
    b["real_time"] = t;
    b["cpu_time"] = t;
    b["time_unit"] = unit;
    arr.push_back(std::move(b));
  }
  // An aggregate row (mean over repetitions) that ingest must skip.
  Json agg = Json::object();
  agg["name"] = "BM_Agg_mean";
  agg["run_type"] = "aggregate";
  agg["iterations"] = 3;
  agg["real_time"] = 1.0;
  agg["cpu_time"] = 1.0;
  agg["time_unit"] = unit;
  arr.push_back(std::move(agg));
  j["benchmarks"] = std::move(arr);
  return j;
}

/// Every query answer a store can give, concatenated — the byte-identity
/// probe used by the order-invariance and restart tests.
std::string all_answers(const store::StoreIndex& index,
                        const std::string& from, const std::string& to) {
  std::string out = store::summary(index).dump(1);
  out += store::trend(index).dump(1);
  out += store::diff_commits(index, from, to).dump(1);
  return out;
}

// ---------------------------------------------------------------------------
// Fingerprints and report versions.
// ---------------------------------------------------------------------------

TEST(StoreFingerprint, HeaderDerivedForV1CfgForV2) {
  const Json v1 = golden_report();
  const std::string hdr = store::fingerprint_of_report(v1);
  EXPECT_EQ(hdr.rfind("hdr-", 0), 0u) << hdr;
  EXPECT_EQ(hdr.size(), 4u + 16u);

  diff::CampaignConfig cfg;
  cfg.num_programs = 4;
  cfg.inputs_per_program = 2;
  const Json echo = campaign::config_to_json(cfg);
  const auto results = diff::run_campaign(cfg);
  const Json v2 = campaign::results_to_json(results, &echo);
  EXPECT_EQ(v2.at("version").as_int(), 2);
  const std::string cfgfp = store::fingerprint_of_report(v2);
  EXPECT_EQ(cfgfp.rfind("cfg-", 0), 0u) << cfgfp;
  EXPECT_EQ(cfgfp, campaign::fingerprint_digest(echo));

  // A lying embedded fingerprint is refused, not trusted.
  Json tampered = v2;
  tampered["fingerprint"] = "cfg-0000000000000000";
  EXPECT_THROW(store::fingerprint_of_report(tampered), std::runtime_error);
  EXPECT_THROW(campaign::results_from_json(tampered), std::runtime_error);
}

TEST(StoreFingerprint, V2ReportRoundTripsToV1Bytes) {
  diff::CampaignConfig cfg;
  cfg.num_programs = 6;
  cfg.inputs_per_program = 2;
  cfg.seed = 7;
  const Json echo = campaign::config_to_json(cfg);
  const auto results = diff::run_campaign(cfg);
  const std::string v1_bytes = campaign::results_to_json(results).dump(1);

  const Json v2 = campaign::results_to_json(results, &echo);
  EXPECT_EQ(v2.at("fingerprint").as_string(),
            campaign::fingerprint_digest(v2.at("config")));
  // The v2 extras are pure annotation: decoding v2 and re-encoding v1
  // reproduces the locked v1 bytes exactly.
  const auto decoded = campaign::results_from_json(v2);
  EXPECT_EQ(campaign::results_to_json(decoded).dump(1), v1_bytes);
}

// ---------------------------------------------------------------------------
// Ingest: format lock, immutability, hardening.
// ---------------------------------------------------------------------------

TEST(StoreIngest, GoldenPopulationLocksOnDiskFormat) {
  TempDir dir("gpudiff_store_golden");
  const std::string db = dir.file("db");
  store::ingest(db, "golden", {kGoldenReport});
  const std::string fp = store::fingerprint_of_report(golden_report());
  const std::string pop_path = db + "/pop/golden/" + fp + ".json";
  ASSERT_TRUE(std::filesystem::exists(pop_path));
  // Byte-compare against the committed golden: any change to the
  // population document layout must be deliberate (new golden + version
  // bump), never drift.
  EXPECT_EQ(support::read_file(pop_path),
            support::read_file(kGoldenPopulation));
}

// Exemplar keys of a population must resolve against the report they were
// selected from; a key with no record (the report was re-merged under a
// tighter --max-records cap, or one of the files is stale) is a named-file
// error, never a silent skip.
TEST(StoreIngest, DanglingExemplarKeyNamedNotSilentlySkipped) {
  TempDir dir("gpudiff_store_dangling");
  const std::string db = dir.file("db");
  store::ingest(db, "head", {kGoldenReport});
  const Json report = golden_report();
  const std::string fp = store::fingerprint_of_report(report);
  const auto index = store::load_store(db);
  const Json& pop = store::population(index, "head", fp);
  const std::string pop_name = db + "/pop/head/" + fp + ".json";

  // Happy path: every exemplar key resolves, in canonical order.
  const std::vector<std::string> keys =
      store::exemplar_keys_of_population(pop);
  ASSERT_FALSE(keys.empty());
  const auto records =
      store::resolve_exemplars(pop, report, pop_name, kGoldenReport);
  ASSERT_EQ(records.size(), keys.size());
  for (std::size_t i = 0; i < records.size(); ++i)
    EXPECT_EQ(store::record_key(records[i]), keys[i]);

  // Re-merge simulation: drop the record behind the first exemplar key
  // (the v1 fingerprint is header-derived, so it still matches).
  Json capped = report;
  auto& recs = capped["records"].as_array();
  const std::size_t before = recs.size();
  recs.erase(std::remove_if(
                 recs.begin(), recs.end(),
                 [&](const Json& r) {
                   return std::to_string(r.at("program").as_int()) + ":" +
                              std::to_string(r.at("input").as_int()) + ":" +
                              r.at("level").as_string() ==
                          keys.front();
                 }),
             recs.end());
  ASSERT_LT(recs.size(), before);
  try {
    store::resolve_exemplars(pop, capped, pop_name, "capped.json");
    FAIL() << "dangling exemplar key was silently accepted";
  } catch (const std::runtime_error& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find(keys.front()), std::string::npos) << message;
    EXPECT_NE(message.find(pop_name), std::string::npos) << message;
    EXPECT_NE(message.find("capped.json"), std::string::npos) << message;
  }

  // A population checked against a foreign report is refused up front,
  // naming both documents.
  Json foreign = report;
  foreign["seed"] = report.at("seed").as_int() + 1;
  EXPECT_THROW(
      store::resolve_exemplars(pop, foreign, pop_name, "foreign.json"),
      std::runtime_error);
}

TEST(StoreIngest, IdempotentReingestConflictRefused) {
  TempDir dir("gpudiff_store_idem");
  const std::string db = dir.file("db");
  const auto first = store::ingest(db, "c1", {kGoldenReport});
  EXPECT_EQ(first.reports, 1);
  // Identical bytes again: a no-op, not an error (at-least-once CI jobs).
  EXPECT_EQ(store::ingest(db, "c1", {kGoldenReport}).reports, 1);

  // Same key, different payload: refused — store files are immutable.
  Json patched = golden_report();
  auto& counts = patched["per_level"].as_array()[0]["class_counts"].as_array();
  counts[0] = counts[0].as_int() + 1;
  const std::string conflicting = dir.file("conflicting.json");
  write_json(conflicting, patched);
  EXPECT_THROW(store::ingest(db, "c1", {conflicting}), std::runtime_error);

  // Bench points accumulate across files but refuse conflicting overlap.
  const std::string b1 = dir.file("b1.json");
  const std::string b2 = dir.file("b2.json");
  const std::string b3 = dir.file("b3.json");
  write_json(b1, bench_file({{"BM_A", 100.0}}));
  write_json(b2, bench_file({{"BM_B", 5.0}}, "us"));
  write_json(b3, bench_file({{"BM_A", 250.0}}));
  EXPECT_EQ(store::ingest(db, "c1", {b1, b2}).bench_files, 2);
  EXPECT_THROW(store::ingest(db, "c1", {b3}), std::runtime_error);

  const auto index = store::load_store(db);
  const auto& benches = index.perf.at("c1").at("benchmarks");
  EXPECT_EQ(benches.as_object().size(), 2u);  // aggregate rows skipped
  EXPECT_EQ(benches.at("BM_B").at("real_time_ns").as_double(), 5000.0);
}

TEST(StoreIngest, CorruptInputsNamedAndQuarantined) {
  TempDir dir("gpudiff_store_corrupt");
  const std::string db = dir.file("db");
  const std::string truncated = dir.file("truncated.json");
  const std::string foreign = dir.file("foreign.json");
  support::write_file(truncated, "{\"format\":\"gpudiff-campaign-resu");
  support::write_file(foreign, "{\"hello\":1}");

  // Without --quarantine the first bad file aborts, naming itself.
  try {
    store::ingest(db, "c1", {truncated, kGoldenReport});
    FAIL() << "corrupt ingest did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated.json"), std::string::npos)
        << e.what();
  }

  // With it, bad files are set aside and good ones still land.
  store::IngestOptions options;
  options.quarantine = true;
  const auto outcome =
      store::ingest(db, "c1", {truncated, foreign, kGoldenReport}, options);
  EXPECT_EQ(outcome.reports, 1);
  ASSERT_EQ(outcome.quarantined.size(), 2u);
  EXPECT_FALSE(std::filesystem::exists(truncated));
  EXPECT_TRUE(std::filesystem::exists(truncated + ".quarantined"));
  EXPECT_TRUE(std::filesystem::exists(foreign + ".quarantined"));
  EXPECT_EQ(store::load_store(db).populations.at("c1").size(), 1u);

  // Commit labels that would escape the layout are refused outright.
  EXPECT_THROW(store::ingest(db, "../evil", {kGoldenReport}),
               std::runtime_error);
  EXPECT_THROW(store::ingest(db, ".hidden", {kGoldenReport}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Queries and diffs: determinism, regression gate.
// ---------------------------------------------------------------------------

/// Two commits sharing the golden fingerprint — c2 with one extra Num/Num
/// discrepancy and a slower BM_Slow — plus bench points for both.
std::string build_two_commit_store(const TempDir& dir, const std::string& db,
                                   bool reversed_order = false) {
  Json patched = golden_report();
  auto& counts = patched["per_level"].as_array()[0]["class_counts"].as_array();
  counts[0] = counts[0].as_int() + 1;
  const std::string patched_path = dir.file("patched.json");
  write_json(patched_path, patched);
  const std::string b1 = dir.file("bench1.json");
  const std::string b2 = dir.file("bench2.json");
  write_json(b1, bench_file({{"BM_Slow", 100.0}, {"BM_Fast", 50.0}}));
  write_json(b2, bench_file({{"BM_Slow", 150.0}, {"BM_Fast", 51.0}}));
  const std::vector<std::pair<std::string, std::vector<std::string>>> plan{
      {"c1", {std::string(kGoldenReport), b1}},
      {"c2", {patched_path, b2}},
  };
  if (reversed_order) {
    for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
      auto files = it->second;
      std::reverse(files.begin(), files.end());
      store::ingest(db, it->first, files);
    }
  } else {
    for (const auto& [commit, files] : plan)
      store::ingest(db, commit, files);
  }
  return store::fingerprint_of_report(patched);
}

TEST(StoreDiff, DeterministicAcrossRunsAndIngestOrders) {
  TempDir dir("gpudiff_store_det");
  const std::string db_a = dir.file("db_a");
  const std::string db_b = dir.file("db_b");
  build_two_commit_store(dir, db_a, /*reversed_order=*/false);
  build_two_commit_store(dir, db_b, /*reversed_order=*/true);
  const auto index_a = store::load_store(db_a);
  const auto index_b = store::load_store(db_b);
  const std::string answers = all_answers(index_a, "c1", "c2");
  EXPECT_EQ(answers, all_answers(index_b, "c1", "c2"));
  // Repeated runs over one index are byte-stable too.
  EXPECT_EQ(answers, all_answers(index_a, "c1", "c2"));
}

TEST(StoreDiff, RegressionGateFlagsPopulationAndPerf) {
  TempDir dir("gpudiff_store_gate");
  const std::string db = dir.file("db");
  const std::string fp = build_two_commit_store(dir, db);
  const auto index = store::load_store(db);

  const Json d = store::diff_commits(index, "c1", "c2");
  EXPECT_FALSE(d.at("clean").as_bool());
  const auto& pop_reg = d.at("regressions").at("population").as_array();
  ASSERT_EQ(pop_reg.size(), 1u);
  EXPECT_EQ(pop_reg[0].as_string(), fp);
  const auto& perf_reg = d.at("regressions").at("perf").as_array();
  ASSERT_EQ(perf_reg.size(), 1u);  // +50% BM_Slow; +2% BM_Fast is in budget
  EXPECT_EQ(perf_reg[0].as_string(), "BM_Slow");
  const auto& entry = d.at("populations").at(fp);
  EXPECT_EQ(entry.at("status").as_string(), "matched");
  EXPECT_EQ(entry.at("discrepancies").at("delta").as_int(), 1);
  EXPECT_EQ(d.at("perf").at("BM_Slow").at("ratio").as_double(), 1.5);

  // The reverse direction is clean: the population shrank, nothing slowed.
  EXPECT_TRUE(store::diff_commits(index, "c2", "c1").at("clean").as_bool());
  // A looser threshold admits the +50%.
  store::DiffOptions loose;
  loose.max_perf_regress_pct = 60.0;
  const Json d2 = store::diff_commits(index, "c1", "c2", loose);
  EXPECT_EQ(d2.at("regressions").at("perf").as_array().size(), 0u);

  // The renderers consume both documents without throwing.
  EXPECT_NE(diff::render_store_summary(store::summary(index)).find("c1"),
            std::string::npos);
  EXPECT_NE(diff::render_store_diff(d).find("REGRESS"), std::string::npos);

  EXPECT_THROW(store::diff_commits(index, "c1", "nope"), std::runtime_error);
}

TEST(StoreQuery, PopulationAndDrilldownErrors) {
  TempDir dir("gpudiff_store_query");
  const std::string db = dir.file("db");
  store::ingest(db, "c1", {kGoldenReport});
  const auto index = store::load_store(db);
  const std::string fp = store::fingerprint_of_report(golden_report());

  // Empty fingerprint selects the only population.
  EXPECT_EQ(store::population(index, "c1", "").at("fingerprint").as_string(),
            fp);
  EXPECT_THROW(store::population(index, "c1", "hdr-bogus"),
               std::runtime_error);
  EXPECT_THROW(store::population(index, "nope", ""), std::runtime_error);

  const Json drill = store::pair_drilldown(index, "c1", "", "hipcc");
  EXPECT_EQ(drill.at("baseline").as_string(), "nvcc");
  EXPECT_EQ(drill.at("pair").as_string(), "hipcc");
  // Drill-down totals agree with the population totals.
  EXPECT_EQ(drill.at("discrepancies").as_int(),
            store::population(index, "c1", "").at("totals")
                .at("discrepancies").as_int());
  EXPECT_THROW(store::pair_drilldown(index, "c1", "", "nvcc"),
               std::runtime_error);  // the baseline is not a pair
}

TEST(StoreLoad, TempLitterSkippedMislabeledRefused) {
  TempDir dir("gpudiff_store_litter");
  const std::string db = dir.file("db");
  store::ingest(db, "c1", {kGoldenReport});
  // Crash litter from a killed atomic write must be invisible.
  support::write_file(db + "/pop/c1/zzz.json.tmp", "{\"torn");
  support::write_file(db + "/perf/c9.json.tmp.123", "{\"torn");
  EXPECT_EQ(store::load_store(db).populations.at("c1").size(), 1u);

  // A population copied under the wrong commit must not silently relabel.
  const std::string fp = store::fingerprint_of_report(golden_report());
  std::filesystem::create_directories(db + "/pop/c2");
  std::filesystem::copy_file(db + "/pop/c1/" + fp + ".json",
                             db + "/pop/c2/" + fp + ".json");
  EXPECT_THROW(store::load_store(db), std::runtime_error);
}

// ---------------------------------------------------------------------------
// The serve daemon: wire protocol, concurrency, restart recovery.
// ---------------------------------------------------------------------------

Json client_query(int port, const Json& request) {
  net::Socket socket = net::connect_tcp("127.0.0.1", port, 5.0);
  if (!socket.valid()) throw std::runtime_error("connect failed");
  Json hello = Json::object();
  hello["op"] = "hello";
  hello["version"] = net::kWireVersion;
  hello["store_version"] = store::kStoreVersion;
  Json response;
  if (net::request_response(socket, std::move(hello), 1, &response, 5.0) !=
          net::IoStatus::Ok ||
      !response.get_or("ok", Json(false)).as_bool())
    throw std::runtime_error("hello refused");
  if (net::request_response(socket, request, 2, &response, 5.0) !=
      net::IoStatus::Ok)
    throw std::runtime_error("query failed");
  return response;
}

TEST(StoreServe, HelloRefusesVersionMismatchesFatally) {
  TempDir dir("gpudiff_store_hello");
  const std::string db = dir.file("db");
  store::ingest(db, "c1", {kGoldenReport});
  store::ServeOptions options;
  options.dir = db;
  store::StoreServer server(options);
  server.start();

  net::Socket socket = net::connect_tcp("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(socket.valid());
  Json hello = Json::object();
  hello["op"] = "hello";
  hello["version"] = net::kWireVersion + 1;
  Json response;
  ASSERT_EQ(net::request_response(socket, std::move(hello), 1, &response, 5.0),
            net::IoStatus::Ok);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_TRUE(response.at("fatal").as_bool());

  // Skipping the hello is refused just as fatally.
  net::Socket second = net::connect_tcp("127.0.0.1", server.port(), 5.0);
  ASSERT_TRUE(second.valid());
  Json naked = Json::object();
  naked["op"] = "summary";
  ASSERT_EQ(net::request_response(second, std::move(naked), 1, &response, 5.0),
            net::IoStatus::Ok);
  EXPECT_FALSE(response.at("ok").as_bool());
  EXPECT_TRUE(response.at("fatal").as_bool());
  server.stop();
}

TEST(StoreServe, ConcurrentClientsSeeIdenticalAnswers) {
  TempDir dir("gpudiff_store_conc");
  const std::string db = dir.file("db");
  build_two_commit_store(dir, db);
  store::ServeOptions options;
  options.dir = db;
  store::StoreServer server(options);
  server.start();
  const int port = server.port();

  Json summary_req = Json::object();
  summary_req["op"] = "summary";
  Json pair_req = Json::object();
  pair_req["op"] = "pair";
  pair_req["commit"] = "c2";
  pair_req["pair"] = "hipcc";
  Json diff_req = Json::object();
  diff_req["op"] = "diff";
  diff_req["from"] = "c1";
  diff_req["to"] = "c2";
  const std::vector<Json> requests{summary_req, pair_req, diff_req};

  // Three concurrent clients, each hammering all three query shapes; the
  // answers must be identical across clients and iterations (one mutexed
  // index, deterministic serialization).
  std::vector<std::string> transcripts(3);
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      for (int iter = 0; iter < 8; ++iter)
        for (const auto& req : requests)
          transcripts[static_cast<std::size_t>(c)] +=
              client_query(port, req).dump() + "\n";
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_FALSE(transcripts[0].empty());
  EXPECT_EQ(transcripts[0], transcripts[1]);
  EXPECT_EQ(transcripts[0], transcripts[2]);
  server.stop();

  // Restart on the same directory: the index rebuilds byte-identically
  // (the files are the journal), so the first answer matches the last.
  store::StoreServer revived(options);
  revived.start();
  std::string again;
  for (const auto& req : requests)
    again += client_query(revived.port(), req).dump() + "\n";
  revived.stop();
  EXPECT_EQ(transcripts[0].substr(0, again.size()), again);
}

TEST(StoreServe, RefreshPicksUpNewIngest) {
  TempDir dir("gpudiff_store_refresh");
  const std::string db = dir.file("db");
  store::ingest(db, "c1", {kGoldenReport});
  store::ServeOptions options;
  options.dir = db;
  store::StoreServer server(options);
  EXPECT_EQ(server.commit_count(), 1);

  store::ingest(db, "c2", {kGoldenReport});
  Json refresh = Json::object();
  refresh["op"] = "refresh";
  refresh["seq"] = 5;
  const Json response = server.handle(refresh);
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("seq").as_int(), 5);
  EXPECT_EQ(response.at("commits").as_int(), 2);
  EXPECT_EQ(server.commit_count(), 2);

  // Unknown keys are non-fatal errors through the wire path; unknown ops
  // are fatal (std::invalid_argument from handle).
  Json bad = Json::object();
  bad["op"] = "population";
  bad["commit"] = "nope";
  EXPECT_THROW(server.handle(bad), std::runtime_error);
  Json unknown = Json::object();
  unknown["op"] = "frobnicate";
  EXPECT_THROW(server.handle(unknown), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Process drill: SIGKILL the real serve binary mid-query; restart recovers
// the index byte-identically.
// ---------------------------------------------------------------------------

const char* serve_binary() { return std::getenv("GPUDIFF_SERVE_BIN"); }

pid_t spawn_child(const char* bin, const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(bin));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    // Keep child chatter out of the gtest stream.
    std::freopen("/dev/null", "w", stdout);
    ::execv(bin, argv.data());
    std::_Exit(127);
  }
  return pid;
}

int pick_free_port() {
  net::Listener probe;
  probe.listen("127.0.0.1", 0);
  return probe.port();
}

bool wait_until(const std::function<bool()>& pred, double seconds = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

bool server_answers(int port) {
  try {
    Json ping = Json::object();
    ping["op"] = "ping";
    return client_query(port, ping).at("ok").as_bool();
  } catch (const std::exception&) {
    return false;
  }
}

TEST(StoreServe, KillRestartDrillRecoversByteIdentical) {
  if (serve_binary() == nullptr)
    GTEST_SKIP() << "GPUDIFF_SERVE_BIN not set (run under CTest)";
  TempDir dir("gpudiff_store_drill");
  const std::string db = dir.file("db");
  build_two_commit_store(dir, db);
  const int port = pick_free_port();
  const auto spawn_server = [&] {
    return spawn_child(serve_binary(), {"--store", db, "--serve", "--port",
                                        std::to_string(port)});
  };

  pid_t server = spawn_server();
  ASSERT_GT(server, 0);
  ASSERT_TRUE(wait_until([&] { return server_answers(port); }))
      << "serve daemon never came up";

  Json diff_req = Json::object();
  diff_req["op"] = "diff";
  diff_req["from"] = "c1";
  diff_req["to"] = "c2";
  Json pair_req = Json::object();
  pair_req["op"] = "pair";
  pair_req["commit"] = "c1";
  pair_req["pair"] = "hipcc";
  const std::string before = client_query(port, diff_req).dump() +
                             client_query(port, pair_req).dump();

  // Clients mid-flight while the server dies: their failures are the
  // point (no graceful shutdown path exists to flush anything).
  std::thread hammer([&] {
    for (int i = 0; i < 1000; ++i) {
      try {
        client_query(port, diff_req);
      } catch (const std::exception&) {
        return;  // the kill landed
      }
    }
  });
  ASSERT_EQ(::kill(server, SIGKILL), 0);
  int status = 0;
  ::waitpid(server, &status, 0);
  hammer.join();

  // Restart on the same directory and port: the store files are the
  // journal, so every answer must come back byte-identical.
  server = spawn_server();
  ASSERT_GT(server, 0);
  ASSERT_TRUE(wait_until([&] { return server_answers(port); }))
      << "revived serve daemon never came up";
  const std::string after = client_query(port, diff_req).dump() +
                            client_query(port, pair_req).dump();
  EXPECT_EQ(before, after);

  ASSERT_EQ(::kill(server, SIGTERM), 0);
  ::waitpid(server, &status, 0);
  EXPECT_TRUE(WIFEXITED(status)) << status;
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
