// Equivalence and fault-injection tests for the work-stealing shard
// scheduler (campaign/scheduler.hpp).  The load-bearing property is the
// same one the fixed-carve tests lock down, under much nastier execution
// shapes: however a fleet of workers carves, steals, duplicates, dies or
// is interrupted, the merged CampaignResults must be byte-identical to the
// single-process diff::run_campaign output.
//
// The fault-injection half drives the real gpudiff-campaign binary as a
// child process (located via the GPUDIFF_CAMPAIGN_BIN environment
// variable, wired up by CMake) so SIGKILL/SIGINT exercise the actual
// signal-handler and process-death paths, not in-process simulations.

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/checkpoint.hpp"
#include "campaign/merge.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/shard.hpp"
#include "diff/campaign.hpp"
#include "support/json.hpp"
#include "support/lockfile.hpp"

namespace {

using namespace gpudiff;
using campaign::LeaseBoard;
using campaign::WorkerOptions;
using campaign::WorkerOutcome;

diff::CampaignConfig small_config(int programs = 45) {
  diff::CampaignConfig cfg;
  cfg.num_programs = programs;
  cfg.inputs_per_program = 5;
  cfg.seed = 1234;
  return cfg;
}

std::string canonical(const diff::CampaignResults& results) {
  return campaign::results_to_json(results).dump(1);
}

/// A scratch directory removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
};

int count_files_with_suffix(const std::string& dir, const std::string& suffix) {
  int n = 0;
  if (!std::filesystem::is_directory(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      ++n;
  }
  return n;
}

bool wait_until(const std::function<bool()>& pred, double seconds = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

// ---------------------------------------------------------------------------
// scheduler equivalence: merged lease dir == single process, byte for byte
// ---------------------------------------------------------------------------

TEST(Scheduler, SingleWorkerMatchesSingleProcessByteForByte) {
  const auto cfg = small_config();
  TempDir dir("gpudiff_sched_single");
  WorkerOptions options;
  options.dir = dir.str();
  options.lease_size = 4;
  options.worker_id = "w0";
  const WorkerOutcome outcome = campaign::run_worker(cfg, options);
  EXPECT_TRUE(outcome.campaign_complete);
  EXPECT_EQ(outcome.leases_completed, campaign::lease_count(45, 4));
  EXPECT_EQ(outcome.leases_stolen, 0);
  EXPECT_EQ(outcome.programs_executed, 45u);
  EXPECT_TRUE(campaign::campaign_complete(dir.str()));
  EXPECT_EQ(count_files_with_suffix(dir.str(), ".claim"), 0)
      << "completed worker left claim files behind";
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));
}

TEST(Scheduler, ThreeWorkerFleetSelfBalancesByteForByte) {
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir dir("gpudiff_sched_fleet");
  std::vector<WorkerOutcome> outcomes(3);
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      WorkerOptions options;
      options.dir = dir.str();
      options.lease_size = 2;
      // Effectively disable staleness: a CI box descheduling a worker
      // thread for a minute must not turn into a legitimate steal that
      // breaks the exactly-once assertion below.
      options.stale_after_seconds = 1e9;
      options.worker_id = "fleet-" + std::to_string(i);
      outcomes[static_cast<std::size_t>(i)] = campaign::run_worker(cfg, options);
    });
  }
  for (auto& w : workers) w.join();

  int total_leases = 0;
  std::uint64_t total_programs = 0;
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.campaign_complete);
    total_leases += o.leases_completed;
    total_programs += o.programs_executed;
  }
  // Nothing is stale in a live fleet, claims are exclusive, and a claim
  // won after a peer's release is re-checked against the peer's done file
  // before executing — so every lease runs exactly once.
  EXPECT_EQ(total_leases, campaign::lease_count(45, 2));
  EXPECT_EQ(total_programs, 45u);
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())), direct);
}

TEST(Scheduler, OversizedLeaseAndZeroProgramEdges) {
  // lease_size > campaign: one lease holds everything.
  const auto cfg = small_config(5);
  TempDir dir("gpudiff_sched_oversized");
  WorkerOptions options;
  options.dir = dir.str();
  options.lease_size = 1000;
  options.worker_id = "w0";
  const WorkerOutcome outcome = campaign::run_worker(cfg, options);
  EXPECT_TRUE(outcome.campaign_complete);
  EXPECT_EQ(outcome.leases_completed, 1);
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));

  // Zero programs: zero leases, trivially complete, still mergeable.
  const auto empty_cfg = small_config(0);
  TempDir empty_dir("gpudiff_sched_empty");
  WorkerOptions empty_options;
  empty_options.dir = empty_dir.str();
  empty_options.worker_id = "w0";
  const WorkerOutcome empty_outcome =
      campaign::run_worker(empty_cfg, empty_options);
  EXPECT_TRUE(empty_outcome.campaign_complete);
  EXPECT_EQ(empty_outcome.leases_completed, 0);
  EXPECT_EQ(canonical(campaign::merge_lease_dir(empty_dir.str())),
            canonical(diff::run_campaign(empty_cfg)));
}

TEST(Scheduler, DoneFilesAreByteIdenticalAcrossIndependentFleets) {
  // A lease's result block is a pure function of (config, range): two
  // fleets that execute the same campaign in different orders publish
  // byte-identical done files.  This is the invariant that makes
  // at-least-once execution (steals, duplicated leases) safe.
  const auto cfg = small_config(20);
  TempDir dir_a("gpudiff_sched_pure_a");
  TempDir dir_b("gpudiff_sched_pure_b");
  for (const auto& [dir, worker] :
       {std::pair{dir_a.str(), "alpha"}, std::pair{dir_b.str(), "beta"}}) {
    WorkerOptions options;
    options.dir = dir;
    options.lease_size = 3;
    options.worker_id = worker;
    ASSERT_TRUE(campaign::run_worker(cfg, options).campaign_complete);
  }
  const int count = campaign::lease_count(20, 3);
  for (int k = 0; k < count; ++k) {
    const std::string name = "/lease-" + std::to_string(k) + ".done.json";
    EXPECT_EQ(support::read_file(dir_a.str() + name),
              support::read_file(dir_b.str() + name))
        << "lease " << k;
  }
}

// ---------------------------------------------------------------------------
// stale-lease reclamation (work stealing)
// ---------------------------------------------------------------------------

TEST(Scheduler, StaleClaimIsStolenAndMergeStaysByteIdentical) {
  const auto cfg = small_config();
  TempDir dir("gpudiff_sched_stale");
  // A "dead" worker claimed lease 0 an hour ago and never heartbeat again.
  LeaseBoard dead(dir.str(), "dead");
  dead.publish_or_verify_manifest(campaign::config_to_json(cfg), 4,
                                  campaign::lease_count(45, 4));
  ASSERT_TRUE(dead.try_claim(0));
  ASSERT_TRUE(support::age_file(dead.claim_path(0), 3600.0));

  WorkerOptions options;
  options.dir = dir.str();
  options.lease_size = 4;
  options.stale_after_seconds = 60.0;  // 1h-old claim is way past stale
  options.worker_id = "rescuer";
  const WorkerOutcome outcome = campaign::run_worker(cfg, options);
  EXPECT_TRUE(outcome.campaign_complete);
  EXPECT_EQ(outcome.leases_stolen, 1);
  EXPECT_EQ(count_files_with_suffix(dir.str(), ".claim"), 0);
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));
}

TEST(Scheduler, FreshClaimIsRespected) {
  const auto cfg = small_config(20);
  TempDir dir("gpudiff_sched_fresh");
  const int count = campaign::lease_count(20, 4);
  LeaseBoard peer(dir.str(), "live-peer");
  peer.publish_or_verify_manifest(campaign::config_to_json(cfg), 4, count);
  ASSERT_TRUE(peer.try_claim(0));

  // The worker must finish every other lease, refuse to steal the fresh
  // claim, and wait — the stop hook fires once only lease 0 remains.
  WorkerOptions options;
  options.dir = dir.str();
  options.lease_size = 4;
  options.stale_after_seconds = 1e6;
  options.worker_id = "patient";
  options.stop_requested = [&] {
    return count_files_with_suffix(dir.str(), ".done.json") >= count - 1;
  };
  const WorkerOutcome outcome = campaign::run_worker(cfg, options);
  EXPECT_FALSE(outcome.campaign_complete);
  EXPECT_EQ(outcome.leases_completed, count - 1);
  EXPECT_EQ(outcome.leases_stolen, 0);
  EXPECT_TRUE(std::filesystem::exists(peer.claim_path(0)))
      << "a live peer's fresh claim was disturbed";

  // Once the peer releases, any worker finishes the campaign.
  peer.release(0);
  WorkerOptions finish = options;
  finish.stop_requested = nullptr;
  finish.worker_id = "finisher";
  EXPECT_TRUE(campaign::run_worker(cfg, finish).campaign_complete);
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));
}

TEST(Scheduler, ClaimProtocolIsExclusiveAndOwnershipAware) {
  const auto cfg = small_config(10);
  TempDir dir("gpudiff_sched_protocol");
  const int count = campaign::lease_count(10, 2);
  LeaseBoard a(dir.str(), "a");
  LeaseBoard b(dir.str(), "b");
  a.publish_or_verify_manifest(campaign::config_to_json(cfg), 2, count);
  b.publish_or_verify_manifest(campaign::config_to_json(cfg), 2, count);

  EXPECT_TRUE(a.try_claim(3));
  EXPECT_FALSE(b.try_claim(3)) << "claims must be exclusive";
  EXPECT_GE(a.claim_age_seconds(3), 0.0);
  EXPECT_TRUE(a.heartbeat(3));
  EXPECT_FALSE(b.heartbeat(3)) << "heartbeat must verify ownership";

  // release is ownership-aware: b abandoning does not clear a's claim.
  b.release(3);
  EXPECT_TRUE(std::filesystem::exists(a.claim_path(3)));

  // A steal transfers ownership atomically; the old owner's heartbeat and
  // release become no-ops on the new claim.
  EXPECT_TRUE(b.try_steal(3));
  EXPECT_FALSE(a.heartbeat(3));
  a.release(3);
  EXPECT_TRUE(std::filesystem::exists(b.claim_path(3)));
  b.release(3);
  EXPECT_FALSE(std::filesystem::exists(b.claim_path(3)));

  // Stealing a nonexistent claim loses the race cleanly.
  EXPECT_FALSE(a.try_steal(4));
  EXPECT_EQ(a.claim_age_seconds(4), -1.0);
}

TEST(Scheduler, ReapsTempFilesStrandedByKilledPublishers) {
  // A SIGKILL between a temp write and its link/rename strands the temp
  // in the shared directory; workers reap temps older than the staleness
  // window at startup, and leave fresh ones (a live publisher mid-write)
  // alone.
  const auto cfg = small_config(20);
  TempDir dir("gpudiff_sched_reap");
  std::filesystem::create_directories(dir.path);
  const auto plant = [&](const std::string& name, double age) {
    const std::string path = dir.str() + "/" + name;
    support::write_file(path, "{}");
    ASSERT_TRUE(support::age_file(path, age));
  };
  plant("lease-0.claim.deadworker", 3600.0);        // claim temp
  plant("lease-1.claim.stale.deadworker", 3600.0);  // steal tombstone
  plant("lease-2.done.json.tmp.deadworker", 3600.0);
  plant("campaign.json.deadworker", 3600.0);
  plant("lease-3.claim.liveworker", 0.0);  // fresh: must survive

  WorkerOptions options;
  options.dir = dir.str();
  options.lease_size = 4;
  options.stale_after_seconds = 60.0;
  options.worker_id = "w0";
  const WorkerOutcome outcome = campaign::run_worker(cfg, options);
  EXPECT_TRUE(outcome.campaign_complete);
  EXPECT_FALSE(std::filesystem::exists(dir.str() + "/lease-0.claim.deadworker"));
  EXPECT_FALSE(
      std::filesystem::exists(dir.str() + "/lease-1.claim.stale.deadworker"));
  EXPECT_FALSE(
      std::filesystem::exists(dir.str() + "/lease-2.done.json.tmp.deadworker"));
  EXPECT_FALSE(std::filesystem::exists(dir.str() + "/campaign.json.deadworker"));
  EXPECT_TRUE(std::filesystem::exists(dir.str() + "/lease-3.claim.liveworker"));
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));
}

TEST(Scheduler, RejectsMismatchedManifest) {
  auto cfg = small_config(10);
  TempDir dir("gpudiff_sched_mismatch");
  WorkerOptions options;
  options.dir = dir.str();
  options.lease_size = 4;
  options.worker_id = "w0";
  ASSERT_TRUE(campaign::run_worker(cfg, options).campaign_complete);

  // Different campaign configuration, same dir: refused.
  auto other = cfg;
  other.seed = 99;
  EXPECT_THROW(campaign::run_worker(other, options), std::runtime_error);
  // Same campaign, different lease geometry: also refused.
  WorkerOptions regeared = options;
  regeared.lease_size = 5;
  EXPECT_THROW(campaign::run_worker(cfg, regeared), std::runtime_error);
}

TEST(Scheduler, MergeRejectsUnfinishedLeaseDir) {
  const auto cfg = small_config(20);
  TempDir dir("gpudiff_sched_unfinished");
  WorkerOptions options;
  options.dir = dir.str();
  options.lease_size = 4;
  options.worker_id = "w0";
  int leases_done = 0;
  options.on_lease = [&](const WorkerOptions::LeaseEvent&) { ++leases_done; };
  options.stop_requested = [&] { return leases_done >= 2; };
  const WorkerOutcome outcome = campaign::run_worker(cfg, options);
  EXPECT_FALSE(outcome.campaign_complete);
  EXPECT_THROW(campaign::merge_lease_dir(dir.str()), std::runtime_error);
  EXPECT_FALSE(campaign::campaign_complete(dir.str()));
}

TEST(Scheduler, StopFlushesInFlightLeaseAndReleasesEveryClaim) {
  // The graceful-interrupt contract (the SIGINT fix, in-process form):
  // a stop request mid-campaign still publishes the lease being executed
  // and releases all claims, so nothing the worker touched is stranded.
  const auto cfg = small_config();
  TempDir dir("gpudiff_sched_stop");
  WorkerOptions options;
  options.dir = dir.str();
  options.lease_size = 4;
  options.worker_id = "interrupted";
  int leases_done = 0;
  options.on_lease = [&](const WorkerOptions::LeaseEvent&) { ++leases_done; };
  options.stop_requested = [&] { return leases_done >= 3; };
  const WorkerOutcome outcome = campaign::run_worker(cfg, options);
  EXPECT_FALSE(outcome.campaign_complete);
  EXPECT_EQ(outcome.leases_completed, 3);
  EXPECT_EQ(count_files_with_suffix(dir.str(), ".done.json"), 3)
      << "every completed lease must be published before exiting";
  EXPECT_EQ(count_files_with_suffix(dir.str(), ".claim"), 0)
      << "an interrupted worker must not strand claimed work";

  WorkerOptions finish;
  finish.dir = dir.str();
  finish.lease_size = 4;
  finish.worker_id = "finisher";
  const WorkerOutcome finished = campaign::run_worker(cfg, finish);
  EXPECT_TRUE(finished.campaign_complete);
  EXPECT_EQ(finished.leases_stolen, 0) << "released claims need no stealing";
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));
}

// ---------------------------------------------------------------------------
// merge generalization: variable-size blocks
// ---------------------------------------------------------------------------

TEST(MergeBlocks, VariableSizedBlocksMatchUnsharded) {
  const auto cfg = small_config();
  const support::Json echo = campaign::config_to_json(cfg);
  const auto make_block = [&](std::uint64_t begin, std::uint64_t end) {
    diff::RangeOutcome out = diff::run_campaign_range(cfg, begin, end);
    campaign::ResultBlock block;
    block.config_echo = echo;
    block.begin = begin;
    block.end = end;
    block.per_level = std::move(out.per_level);
    block.records = std::move(out.records);
    return block;
  };
  // Deliberately irregular carve, including an empty block.
  std::vector<campaign::ResultBlock> blocks;
  blocks.push_back(make_block(8, 30));
  blocks.push_back(make_block(0, 7));
  blocks.push_back(make_block(30, 30));
  blocks.push_back(make_block(7, 8));
  blocks.push_back(make_block(30, 45));
  EXPECT_EQ(canonical(campaign::merge_blocks(echo, std::move(blocks))),
            canonical(diff::run_campaign(cfg)));
}

TEST(MergeBlocks, RejectsGapsOverlapsAndForeignConfigs) {
  const auto cfg = small_config(10);
  const support::Json echo = campaign::config_to_json(cfg);
  const auto make_block = [&](std::uint64_t begin, std::uint64_t end) {
    diff::RangeOutcome out = diff::run_campaign_range(cfg, begin, end);
    campaign::ResultBlock block;
    block.config_echo = echo;
    block.begin = begin;
    block.end = end;
    block.per_level = std::move(out.per_level);
    block.records = std::move(out.records);
    return block;
  };
  const auto merge_two = [&](campaign::ResultBlock a, campaign::ResultBlock b) {
    std::vector<campaign::ResultBlock> blocks;
    blocks.push_back(std::move(a));
    blocks.push_back(std::move(b));
    return campaign::merge_blocks(echo, std::move(blocks));
  };
  // Gap: [0,4) + [6,10).
  EXPECT_THROW(merge_two(make_block(0, 4), make_block(6, 10)),
               std::runtime_error);
  // Overlap: [0,6) + [4,10).
  EXPECT_THROW(merge_two(make_block(0, 6), make_block(4, 10)),
               std::runtime_error);
  // Incomplete cover: [0,4) + [4,8).
  EXPECT_THROW(merge_two(make_block(0, 4), make_block(4, 8)),
               std::runtime_error);
  // Foreign configuration fingerprint.
  auto foreign = make_block(4, 10);
  foreign.config_echo = support::Json::object();
  EXPECT_THROW(merge_two(make_block(0, 4), std::move(foreign)),
               std::runtime_error);
  // Empty block list is valid only for a 0-program campaign.
  EXPECT_THROW(campaign::merge_blocks(echo, {}), std::runtime_error);
  EXPECT_NO_THROW(campaign::merge_blocks(
      campaign::config_to_json(small_config(0)), {}));
  // The valid carve still works.
  EXPECT_EQ(canonical(merge_two(make_block(0, 4), make_block(4, 10))),
            canonical(diff::run_campaign(cfg)));
}

// ---------------------------------------------------------------------------
// fault injection against the real binary (SIGKILL / SIGINT)
// ---------------------------------------------------------------------------

/// Path to the gpudiff-campaign binary, wired through CMake; null when the
/// test binary runs outside CTest.
const char* campaign_binary() { return std::getenv("GPUDIFF_CAMPAIGN_BIN"); }

pid_t spawn_campaign(const std::vector<std::string>& args) {
  const char* bin = campaign_binary();
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(bin));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    // Keep child chatter out of the gtest stream.
    std::freopen("/dev/null", "w", stdout);
    ::execv(bin, argv.data());
    std::_Exit(127);
  }
  return pid;
}

int wait_for_exit(pid_t pid) {
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  return status;
}

/// Shared flags matching small_config(45): both sides of every byte
/// comparison must describe the same campaign.
std::vector<std::string> worker_args(const std::string& dir) {
  return {"--worker",     dir,    "--programs", "45",   "--inputs",
          "5",            "--seed", "1234",     "--lease-size", "2",
          "--heartbeat",  "0.05"};
}

TEST(FaultInjection, SigkilledWorkerIsReclaimedByteForByte) {
  if (campaign_binary() == nullptr)
    GTEST_SKIP() << "GPUDIFF_CAMPAIGN_BIN not set (run under CTest)";
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir dir("gpudiff_sched_sigkill");

  // Stale-after is huge for the victim so the orphaned claim is
  // unambiguously the kill's doing, not a timeout.
  auto args = worker_args(dir.str());
  args.insert(args.end(), {"--stale-after", "100000", "--worker-id", "victim"});
  const pid_t victim = spawn_campaign(args);
  ASSERT_GT(victim, 0);
  // SIGKILL the instant the victim is inside the campaign (it has claimed
  // or even finished a lease) — no grace, no handler, no cleanup.
  ASSERT_TRUE(wait_until([&] {
    return count_files_with_suffix(dir.str(), ".claim") > 0 ||
           count_files_with_suffix(dir.str(), ".done.json") > 0;
  })) << "victim never started claiming leases";
  ASSERT_EQ(::kill(victim, SIGKILL), 0);
  const int status = wait_for_exit(victim);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  // A claim is stranded — and must be stolen — only if its lease has no
  // done file.  (A kill between publish_done and release leaves a claim
  // on an already-done lease, which the rescuer rightly skips.)
  bool orphaned_claim = false;
  std::string snapshot;
  for (const auto& entry : std::filesystem::directory_iterator(dir.str())) {
    const std::string path = entry.path().string();
    snapshot += entry.path().filename().string() + "\n";
    if (path.size() < 6 || path.compare(path.size() - 6, 6, ".claim") != 0)
      continue;
    const std::string done =
        path.substr(0, path.size() - 6) + ".done.json";
    if (!std::filesystem::exists(done)) orphaned_claim = true;
  }

  // A rescuer with an aggressive staleness window reclaims the orphan and
  // finishes the campaign.
  WorkerOptions rescue;
  rescue.dir = dir.str();
  rescue.lease_size = 2;
  rescue.stale_after_seconds = 0.0;
  rescue.worker_id = "rescuer";
  const WorkerOutcome outcome = campaign::run_worker(cfg, rescue);
  EXPECT_TRUE(outcome.campaign_complete);
  if (orphaned_claim)
    EXPECT_GE(outcome.leases_stolen, 1)
        << "post-kill snapshot was:\n" << snapshot;
  // Whatever the kill window hit — mid-lease (stolen) or between publish
  // and release (reaped) — the rescuer leaves no claim behind.
  EXPECT_EQ(count_files_with_suffix(dir.str(), ".claim"), 0);
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())), direct);
}

TEST(FaultInjection, SigintWorkerFlushesLeaseAndStrandsNothing) {
  // Regression test for the SIGINT fix: an interrupted --worker must
  // publish the lease it is executing and release every claim before
  // exiting, so the rest of the fleet continues at full speed (no
  // stale-after wait) and the merge stays byte-identical.
  if (campaign_binary() == nullptr)
    GTEST_SKIP() << "GPUDIFF_CAMPAIGN_BIN not set (run under CTest)";
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir dir("gpudiff_sched_sigint");

  auto args = worker_args(dir.str());
  args.insert(args.end(),
              {"--stale-after", "100000", "--worker-id", "interrupted"});
  const pid_t pid = spawn_campaign(args);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_until([&] {
    return count_files_with_suffix(dir.str(), ".done.json") > 0;
  })) << "worker never completed a lease";
  ASSERT_EQ(::kill(pid, SIGINT), 0);
  const int status = wait_for_exit(pid);
  ASSERT_TRUE(WIFEXITED(status));
  // 3 = interrupted before campaign completion; 0 = the signal raced a
  // fast campaign to the finish line.  Both are graceful exits.
  EXPECT_TRUE(WEXITSTATUS(status) == 3 || WEXITSTATUS(status) == 0)
      << "unexpected exit code " << WEXITSTATUS(status);
  EXPECT_EQ(count_files_with_suffix(dir.str(), ".claim"), 0)
      << "SIGINT stranded a claimed lease";
  // Every published done file is whole (atomic write-then-rename).
  for (const auto& entry : std::filesystem::directory_iterator(dir.str())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("lease-", 0) == 0 && name.find(".done.json") != std::string::npos)
      EXPECT_NO_THROW(campaign::block_from_json(
          support::Json::parse(support::read_file(entry.path().string())),
          nullptr, nullptr))
          << name;
  }

  // With every claim released, a finisher needs no staleness window at all.
  WorkerOptions finish;
  finish.dir = dir.str();
  finish.lease_size = 2;
  finish.stale_after_seconds = 1e6;
  finish.worker_id = "finisher";
  const WorkerOutcome outcome = campaign::run_worker(cfg, finish);
  EXPECT_TRUE(outcome.campaign_complete);
  EXPECT_EQ(outcome.leases_stolen, 0);
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())), direct);
}

TEST(FaultInjection, SigintShardModeFlushesCheckpointAndResumes) {
  // The shard-mode half of the SIGINT contract, through the real signal
  // handler: the in-progress block is checkpointed before exit and a
  // --resume continuation reproduces the uninterrupted bytes.
  if (campaign_binary() == nullptr)
    GTEST_SKIP() << "GPUDIFF_CAMPAIGN_BIN not set (run under CTest)";
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir dir("gpudiff_sched_sigint_shard");

  const pid_t pid = spawn_campaign(
      {"--shard", "0/1", "--checkpoint-dir", dir.str(), "--checkpoint-every",
       "1", "--programs", "45", "--inputs", "5", "--seed", "1234"});
  ASSERT_GT(pid, 0);
  const std::string ckpt =
      campaign::checkpoint_path(dir.str(), campaign::ShardSpec{0, 1});
  ASSERT_TRUE(wait_until([&] {
    try {
      return campaign::load_checkpoint(ckpt).cursor > 0;
    } catch (const std::exception&) {
      return false;  // not written yet
    }
  })) << "shard never checkpointed a block";
  ASSERT_EQ(::kill(pid, SIGINT), 0);
  const int status = wait_for_exit(pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_TRUE(WEXITSTATUS(status) == 3 || WEXITSTATUS(status) == 0)
      << "unexpected exit code " << WEXITSTATUS(status);

  // The checkpoint on disk is whole and resumable.
  const campaign::ShardProgress after = campaign::load_checkpoint(ckpt);
  EXPECT_GT(after.cursor, 0u);
  campaign::ShardRunOptions resume;
  resume.shard = {0, 1};
  resume.checkpoint_dir = dir.str();
  resume.checkpoint_every = 1;
  resume.resume = true;
  const campaign::ShardProgress finished = campaign::run_shard(cfg, resume);
  EXPECT_TRUE(finished.complete());
  EXPECT_EQ(canonical(campaign::merge_shards({finished})), direct);
}

}  // namespace
