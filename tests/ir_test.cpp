// Unit tests for the program IR: node construction, cloning, equality,
// builder, source rendering, JSON serialization round-trips.

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "ir/builder.hpp"
#include "ir/program.hpp"
#include "ir/serialize.hpp"

namespace {

using namespace gpudiff::ir;

TEST(Expr, ConstructorsSetPayload) {
  auto lit = make_literal(1.5, "+1.5E0");
  EXPECT_EQ(lit->kind, ExprKind::Literal);
  EXPECT_EQ(lit->lit_value, 1.5);
  EXPECT_EQ(lit->lit_text, "+1.5E0");

  auto bin = make_bin(BinOp::Div, make_param(1), make_temp(2));
  EXPECT_EQ(bin->kind, ExprKind::Bin);
  EXPECT_EQ(bin->bin_op, BinOp::Div);
  ASSERT_EQ(bin->kids.size(), 2u);
  EXPECT_EQ(bin->kids[0]->index, 1);
  EXPECT_EQ(bin->kids[1]->index, 2);

  auto call = make_call(MathFn::Fmod, make_param(1), make_param(2));
  EXPECT_EQ(call->kids.size(), 2u);
  auto fma = make_fma(make_param(1), make_param(2), make_param(3));
  EXPECT_EQ(fma->kids.size(), 3u);
}

TEST(Expr, BoolValuedPredicates) {
  EXPECT_TRUE(make_cmp(CmpOp::Lt, make_param(1), make_param(2))->is_bool_valued());
  EXPECT_TRUE(make_not(make_cmp(CmpOp::Eq, make_param(1), make_param(1)))
                  ->is_bool_valued());
  EXPECT_FALSE(make_param(1)->is_bool_valued());
  EXPECT_FALSE(make_bool_to_fp(make_cmp(CmpOp::Lt, make_param(1), make_param(2)))
                   ->is_bool_valued());
}

TEST(Expr, ArityAndNames) {
  EXPECT_EQ(arity(MathFn::Cos), 1);
  EXPECT_EQ(arity(MathFn::Fmod), 2);
  EXPECT_EQ(arity(MathFn::Pow), 2);
  EXPECT_EQ(name_of(MathFn::Cos), "cos");
  EXPECT_EQ(name_of(MathFn::Cos, Precision::FP32), "cosf");
  EXPECT_EQ(name_of(MathFn::Fmod, Precision::FP32), "fmodf");
}

TEST(Expr, CloneIsDeepAndEqual) {
  auto e = make_bin(BinOp::Add, make_call(MathFn::Sqrt, make_param(1)),
                    make_neg(make_literal(2.0)));
  auto c = e->clone();
  EXPECT_TRUE(e->equals(*c));
  // Mutating the clone does not affect the original.
  c->kids[1]->kids[0]->lit_value = 99.0;
  EXPECT_FALSE(e->equals(*c));
  EXPECT_EQ(e->kids[1]->kids[0]->lit_value, 2.0);
}

TEST(Expr, EqualsComparesLiteralBits) {
  auto a = make_literal(0.0);
  auto b = make_literal(-0.0);
  EXPECT_FALSE(a->equals(*b));  // signed zeros are distinct
  auto c = make_literal(0.0, "different spelling");
  EXPECT_TRUE(a->equals(*c));  // spelling is cosmetic
}

TEST(Expr, NodeCount) {
  auto e = make_bin(BinOp::Mul, make_param(1),
                    make_bin(BinOp::Add, make_literal(1.0), make_temp(1)));
  EXPECT_EQ(e->node_count(), 5u);
}

TEST(Stmt, CloneAndCount) {
  std::vector<StmtPtr> body;
  body.push_back(make_assign_comp(AssignOp::Add, make_param(1)));
  auto loop = make_for(0, 1, std::move(body));
  auto c = loop->clone();
  EXPECT_EQ(c->kind, StmtKind::For);
  EXPECT_EQ(c->bound_param, 1);
  ASSERT_EQ(c->body.size(), 1u);
  EXPECT_EQ(loop->node_count(), c->node_count());
}

TEST(Builder, BuildsVarityShapedKernel) {
  ProgramBuilder b(Precision::FP64);
  const int n = b.add_int_param();
  const int x = b.add_scalar_param();
  const int arr = b.add_array_param();
  b.assign_comp(AssignOp::Add, make_call(MathFn::Cos, make_param(x)));
  b.begin_for(n);
  b.store_array(arr, make_loop_var(0), make_param(x));
  b.assign_comp(AssignOp::Sub, make_array(arr, make_loop_var(0)));
  b.end_block();
  b.begin_if(make_cmp(CmpOp::Ge, make_param(0), make_literal(0.0)));
  b.assign_comp(AssignOp::Mul, make_literal(2.0, "+2.0E0"));
  b.end_block();
  Program p = b.build();

  ASSERT_EQ(p.params().size(), 4u);
  EXPECT_EQ(p.params()[0].kind, ParamKind::Comp);
  EXPECT_EQ(p.params()[0].name, "comp");
  EXPECT_EQ(p.params()[1].name, "var_1");
  EXPECT_EQ(p.body().size(), 3u);
  EXPECT_EQ(p.body()[1]->kind, StmtKind::For);
  const std::string src = p.dump();
  EXPECT_NE(src.find("for (int i = 0; i < var_1; ++i)"), std::string::npos);
  EXPECT_NE(src.find("cos(var_2)"), std::string::npos);
  EXPECT_NE(src.find("printf(\"%.17g\\n\", comp);"), std::string::npos);
}

TEST(Builder, RejectsMisuse) {
  ProgramBuilder b(Precision::FP64);
  const int x = b.add_scalar_param();
  EXPECT_THROW(b.begin_for(x), std::logic_error);       // not an int param
  EXPECT_THROW(b.begin_if(make_param(x)), std::logic_error);  // not boolean
  EXPECT_THROW(b.store_array(x, make_loop_var(0), make_literal(1.0)),
               std::logic_error);                       // not an array
  EXPECT_THROW(b.end_block(), std::logic_error);        // nothing open
  b.begin_if(make_cmp(CmpOp::Lt, make_param(x), make_literal(1.0)));
  EXPECT_THROW(b.build(), std::logic_error);            // unclosed block
}

TEST(Builder, TempIdsAreSequential) {
  ProgramBuilder b(Precision::FP32);
  EXPECT_EQ(b.decl_temp(make_literal(1.0)), 1);
  EXPECT_EQ(b.decl_temp(make_literal(2.0)), 2);
  Program p = b.build();
  EXPECT_EQ(p.max_temp_id(), 2);
  EXPECT_EQ(std::string(p.scalar_type()), "float");
}

TEST(Program, SourceRenderingPreservesLiteralSpelling) {
  ProgramBuilder b(Precision::FP64);
  b.assign_comp(AssignOp::Add, make_literal(1.5955e-125, "+1.5955E-125"));
  Program p = b.build();
  EXPECT_NE(p.dump().find("+1.5955E-125"), std::string::npos);
}

TEST(Program, Fp32FallbackSpellingHasSuffix) {
  ProgramBuilder b(Precision::FP32);
  b.assign_comp(AssignOp::Add, make_literal(1.5));  // no spelling recorded
  Program p = b.build();
  EXPECT_NE(p.dump().find("F"), std::string::npos);
}

TEST(Program, CopyIsDeep) {
  ProgramBuilder b(Precision::FP64);
  const int x = b.add_scalar_param();
  b.assign_comp(AssignOp::Add, make_param(x));
  Program p = b.build();
  Program q = p;  // copy
  q.body()[0]->assign_op = AssignOp::Mul;
  EXPECT_EQ(p.body()[0]->assign_op, AssignOp::Add);
}

// ---------------------------------------------------------------------------
// serialization round-trips
// ---------------------------------------------------------------------------

TEST(Serialize, ExprRoundTrip) {
  auto e = make_bin(
      BinOp::Div,
      make_call(MathFn::Fmod, make_param(2), make_literal(1.5793e-307, "+1.5793E-307")),
      make_fma(make_temp(1), make_loop_var(0), make_array(3, make_loop_var(0))));
  auto back = expr_from_json(expr_to_json(*e));
  EXPECT_TRUE(e->equals(*back));
  EXPECT_EQ(back->kids[0]->kids[1]->lit_text, "+1.5793E-307");
}

TEST(Serialize, BooleanExprRoundTrip) {
  auto e = make_bool(BoolOp::And,
                     make_cmp(CmpOp::Ge, make_param(1), make_literal(0.0)),
                     make_not(make_cmp(CmpOp::Ne, make_temp(1), make_param(2))));
  auto back = expr_from_json(expr_to_json(*e));
  EXPECT_TRUE(e->equals(*back));
}

TEST(Serialize, SignedZeroLiteralSurvives) {
  auto e = make_literal(-0.0, "-0.0");
  auto back = expr_from_json(expr_to_json(*e));
  EXPECT_TRUE(e->equals(*back));
}

TEST(Serialize, RejectsGarbage) {
  using gpudiff::support::Json;
  EXPECT_THROW(expr_from_json(Json::parse(R"({"k":"wat"})")), std::runtime_error);
  EXPECT_THROW(stmt_from_json(Json::parse(R"({"k":"wat"})")), std::runtime_error);
}

/// Property: random generated programs survive JSON round-trips with
/// structural equality and byte-identical rendered source.
class ProgramRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ProgramRoundTrip, JsonPreservesProgram) {
  gpudiff::gen::GenConfig cfg;
  cfg.precision = GetParam() % 2 == 0 ? Precision::FP64 : Precision::FP32;
  gpudiff::gen::Generator g(cfg, 99);
  const Program p = g.generate(static_cast<std::uint64_t>(GetParam()));
  const Program q = program_from_json(program_to_json(p));
  ASSERT_EQ(p.params().size(), q.params().size());
  EXPECT_EQ(p.precision(), q.precision());
  EXPECT_EQ(p.dump(), q.dump());
  ASSERT_EQ(p.body().size(), q.body().size());
  EXPECT_EQ(p.node_count(), q.node_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramRoundTrip, ::testing::Range(0, 24));

}  // namespace
