// Unit tests for the program IR: arena node construction, pool copying,
// equality, builder, source rendering, JSON serialization round-trips.

#include <gtest/gtest.h>

#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "ir/builder.hpp"
#include "ir/program.hpp"
#include "ir/serialize.hpp"
#include "opt/pipeline.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff::ir;

TEST(Expr, ConstructorsSetPayload) {
  Arena A;
  const ExprId lit = make_literal(A, 1.5, "+1.5E0");
  EXPECT_EQ(A[lit].kind, ExprKind::Literal);
  EXPECT_EQ(A[lit].lit_value, 1.5);
  EXPECT_EQ(A.text(lit), "+1.5E0");

  const ExprId bin = make_bin(A, BinOp::Div, make_param(A, 1), make_temp(A, 2));
  EXPECT_EQ(A[bin].kind, ExprKind::Bin);
  EXPECT_EQ(A[bin].bin_op, BinOp::Div);
  ASSERT_EQ(A[bin].n_kids, 2);
  EXPECT_EQ(A[A[bin].kid[0]].index, 1);
  EXPECT_EQ(A[A[bin].kid[1]].index, 2);

  const ExprId call = make_call(A, MathFn::Fmod, make_param(A, 1), make_param(A, 2));
  EXPECT_EQ(A[call].n_kids, 2);
  const ExprId fma = make_fma(A, make_param(A, 1), make_param(A, 2), make_param(A, 3));
  EXPECT_EQ(A[fma].n_kids, 3);
}

TEST(Expr, BoolValuedPredicates) {
  Arena A;
  EXPECT_TRUE(A[make_cmp(A, CmpOp::Lt, make_param(A, 1), make_param(A, 2))]
                  .is_bool_valued());
  EXPECT_TRUE(A[make_not(A, make_cmp(A, CmpOp::Eq, make_param(A, 1),
                                     make_param(A, 1)))]
                  .is_bool_valued());
  EXPECT_FALSE(A[make_param(A, 1)].is_bool_valued());
  EXPECT_FALSE(A[make_bool_to_fp(A, make_cmp(A, CmpOp::Lt, make_param(A, 1),
                                             make_param(A, 2)))]
                   .is_bool_valued());
}

TEST(Expr, ArityAndNames) {
  EXPECT_EQ(arity(MathFn::Cos), 1);
  EXPECT_EQ(arity(MathFn::Fmod), 2);
  EXPECT_EQ(arity(MathFn::Pow), 2);
  EXPECT_EQ(name_of(MathFn::Cos), "cos");
  EXPECT_EQ(name_of(MathFn::Cos, Precision::FP32), "cosf");
  EXPECT_EQ(name_of(MathFn::Fmod, Precision::FP32), "fmodf");
}

TEST(Expr, IdsAreStableAcrossArenaGrowth) {
  Arena A;
  const ExprId first = make_literal(A, 2.0);
  for (int i = 0; i < 10000; ++i) (void)make_literal(A, static_cast<double>(i));
  EXPECT_EQ(A[first].lit_value, 2.0);  // growth must never move ids
}

TEST(Expr, EqualsComparesLiteralBits) {
  Arena A;
  const ExprId a = make_literal(A, 0.0);
  const ExprId b = make_literal(A, -0.0);
  EXPECT_FALSE(equal(A, a, A, b));  // signed zeros are distinct
  const ExprId c = make_literal(A, 0.0, "different spelling");
  EXPECT_TRUE(equal(A, a, A, c));  // spelling is cosmetic
}

TEST(Expr, EqualsWorksAcrossArenas) {
  Arena A, B;
  const ExprId x = make_bin(A, BinOp::Add, make_call(A, MathFn::Sqrt, make_param(A, 1)),
                            make_neg(A, make_literal(A, 2.0)));
  const ExprId y = make_bin(B, BinOp::Add, make_call(B, MathFn::Sqrt, make_param(B, 1)),
                            make_neg(B, make_literal(B, 2.0)));
  EXPECT_TRUE(equal(A, x, B, y));
  B[B[y].kid[1]].kind = ExprKind::BoolNot;
  EXPECT_FALSE(equal(A, x, B, y));
}

TEST(Expr, NodeCount) {
  Arena A;
  const ExprId e = make_bin(
      A, BinOp::Mul, make_param(A, 1),
      make_bin(A, BinOp::Add, make_literal(A, 1.0), make_temp(A, 1)));
  EXPECT_EQ(node_count(A, e), 5u);
}

TEST(Expr, NodeCountSurvivesDeepChains) {
  // The pointer IR's recursive clone()/~Expr() would overflow the stack on
  // chains like this; arena traversals are iterative by construction.
  Arena A;
  ExprId e = make_literal(A, 1.0);
  constexpr std::size_t kDepth = 1000000;
  for (std::size_t i = 0; i < kDepth; ++i) e = make_neg(A, e);
  EXPECT_EQ(node_count(A, e), kDepth + 1);
  EXPECT_TRUE(equal(A, e, A, e));
}

TEST(Stmt, BodySpansAndCount) {
  Arena A;
  std::vector<StmtId> body;
  body.push_back(make_assign_comp(A, AssignOp::Add, make_param(A, 1)));
  const StmtId loop = make_for(A, 0, 1, body);
  EXPECT_EQ(A[loop].kind, StmtKind::For);
  EXPECT_EQ(A[loop].bound_param, 1);
  ASSERT_EQ(A.body(A[loop]).size(), 1u);
  EXPECT_EQ(node_count(A, loop), 3u);  // for + assign + param
}

TEST(Builder, BuildsVarityShapedKernel) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  const int x = b.add_scalar_param();
  const int arr = b.add_array_param();
  b.assign_comp(AssignOp::Add, make_call(A, MathFn::Cos, make_param(A, x)));
  b.begin_for(n);
  b.store_array(arr, make_loop_var(A, 0), make_param(A, x));
  b.assign_comp(AssignOp::Sub, make_array(A, arr, make_loop_var(A, 0)));
  b.end_block();
  b.begin_if(make_cmp(A, CmpOp::Ge, make_param(A, 0), make_literal(A, 0.0)));
  b.assign_comp(AssignOp::Mul, make_literal(A, 2.0, "+2.0E0"));
  b.end_block();
  Program p = b.build();

  ASSERT_EQ(p.params().size(), 4u);
  EXPECT_EQ(p.params()[0].kind, ParamKind::Comp);
  EXPECT_EQ(p.params()[0].name, "comp");
  EXPECT_EQ(p.params()[1].name, "var_1");
  EXPECT_EQ(p.body().size(), 3u);
  EXPECT_EQ(p.stmt(p.body()[1]).kind, StmtKind::For);
  const std::string src = p.dump();
  EXPECT_NE(src.find("for (int i = 0; i < var_1; ++i)"), std::string::npos);
  EXPECT_NE(src.find("cos(var_2)"), std::string::npos);
  EXPECT_NE(src.find("printf(\"%.17g\\n\", comp);"), std::string::npos);
}

TEST(Builder, RejectsMisuse) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  EXPECT_THROW(b.begin_for(x), std::logic_error);       // not an int param
  EXPECT_THROW(b.begin_if(make_param(A, x)), std::logic_error);  // not boolean
  EXPECT_THROW(b.store_array(x, make_loop_var(A, 0), make_literal(A, 1.0)),
               std::logic_error);                       // not an array
  EXPECT_THROW(b.end_block(), std::logic_error);        // nothing open
  b.begin_if(make_cmp(A, CmpOp::Lt, make_param(A, x), make_literal(A, 1.0)));
  EXPECT_THROW(b.build(), std::logic_error);            // unclosed block
}

TEST(Builder, TempIdsAreSequential) {
  ProgramBuilder b(Precision::FP32);
  Arena& A = b.arena();
  EXPECT_EQ(b.decl_temp(make_literal(A, 1.0)), 1);
  EXPECT_EQ(b.decl_temp(make_literal(A, 2.0)), 2);
  Program p = b.build();
  EXPECT_EQ(p.max_temp_id(), 2);
  EXPECT_EQ(std::string(p.scalar_type()), "float");
}

TEST(Program, SourceRenderingPreservesLiteralSpelling) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_literal(A, 1.5955e-125, "+1.5955E-125"));
  Program p = b.build();
  EXPECT_NE(p.dump().find("+1.5955E-125"), std::string::npos);
}

TEST(Program, Fp32FallbackSpellingHasSuffix) {
  ProgramBuilder b(Precision::FP32);
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_literal(A, 1.5));  // no spelling recorded
  Program p = b.build();
  EXPECT_NE(p.dump().find("F"), std::string::npos);
}

TEST(Program, CopyIsDeep) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(AssignOp::Add, make_param(A, x));
  Program p = b.build();
  Program q = p;  // pool copy
  q.stmt(q.body()[0]).assign_op = AssignOp::Mul;
  EXPECT_EQ(p.stmt(p.body()[0]).assign_op, AssignOp::Add);
}

// ---------------------------------------------------------------------------
// serialization round-trips
// ---------------------------------------------------------------------------

TEST(Serialize, ExprRoundTrip) {
  Arena A;
  const ExprId e = make_bin(
      A, BinOp::Div,
      make_call(A, MathFn::Fmod, make_param(A, 2),
                make_literal(A, 1.5793e-307, "+1.5793E-307")),
      make_fma(A, make_temp(A, 1), make_loop_var(A, 0),
               make_array(A, 3, make_loop_var(A, 0))));
  Arena B;
  const ExprId back = expr_from_json(B, expr_to_json(A, e));
  EXPECT_TRUE(equal(A, e, B, back));
  EXPECT_EQ(B.text(B[B[back].kid[0]].kid[1]), "+1.5793E-307");
}

TEST(Serialize, BooleanExprRoundTrip) {
  Arena A;
  const ExprId e = make_bool(
      A, BoolOp::And, make_cmp(A, CmpOp::Ge, make_param(A, 1), make_literal(A, 0.0)),
      make_not(A, make_cmp(A, CmpOp::Ne, make_temp(A, 1), make_param(A, 2))));
  Arena B;
  const ExprId back = expr_from_json(B, expr_to_json(A, e));
  EXPECT_TRUE(equal(A, e, B, back));
}

TEST(Serialize, SignedZeroLiteralSurvives) {
  Arena A;
  const ExprId e = make_literal(A, -0.0, "-0.0");
  Arena B;
  const ExprId back = expr_from_json(B, expr_to_json(A, e));
  EXPECT_TRUE(equal(A, e, B, back));
}

// ---------------------------------------------------------------------------
// compact(): drop orphaned pool nodes after pass rewriting
// ---------------------------------------------------------------------------

TEST(Compact, PoolShrinksToReachableNodeCount) {
  // Optimizing passes orphan rewritten nodes in the pool (arena.hpp:
  // "rewrites orphan old nodes").  After compact() the pools hold exactly
  // the live tree: expr_count + stmt_count == node_count() for the
  // tree-shaped programs the generator produces.
  gpudiff::gen::GenConfig cfg;
  gpudiff::gen::Generator g(cfg, 42);
  gpudiff::gen::InputGenerator ig(42);
  int shrunk = 0;
  for (std::uint64_t pi = 0; pi < 20; ++pi) {
    // The fast-math pipeline (fold + contraction + reassociation) is the
    // heaviest rewriter, so its executables carry the most garbage.
    auto exe = gpudiff::opt::compile(
        g.generate(pi), {gpudiff::opt::Toolchain::Nvcc,
                         gpudiff::opt::OptLevel::O3_FastMath, false});
    const auto args = ig.generate(exe.program, pi, 0);
    const auto before_bits = gpudiff::vgpu::run_kernel_tree(exe, args).value_bits;
    const std::string before_json = program_to_json(exe.program).dump();
    const std::size_t live = exe.program.node_count();
    const std::size_t pool_before =
        exe.program.arena().expr_count() + exe.program.arena().stmt_count();
    ASSERT_GE(pool_before, live);
    if (pool_before > live) ++shrunk;

    exe.program.compact();
    // The node-count assertion: nothing live dropped, nothing dead kept.
    EXPECT_EQ(exe.program.node_count(), live);
    EXPECT_EQ(exe.program.arena().expr_count() +
                  exe.program.arena().stmt_count(),
              live);
    // Semantics preserved: serialization and execution are unchanged.
    EXPECT_EQ(program_to_json(exe.program).dump(), before_json);
    exe.bytecode_cache.reset();  // program was rewritten in place
    EXPECT_EQ(gpudiff::vgpu::run_kernel_tree(exe, args).value_bits, before_bits);
    gpudiff::vgpu::ExecContext ctx;
    EXPECT_EQ(exe.bytecode().run(args, ctx).value_bits, before_bits);
  }
  EXPECT_GT(shrunk, 0) << "no optimized program carried orphaned nodes; the "
                          "test is vacuous";
}

TEST(Compact, PreservesLiteralSpellingsAndBodies) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  const int x = b.add_scalar_param();
  // Orphan some nodes by hand: allocated but never referenced.
  make_literal(A, 99.0, "+9.9E1");
  make_bin(A, BinOp::Mul, make_literal(A, 2.0), make_literal(A, 3.0));
  b.begin_for(n);
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Add, make_param(A, x),
                         make_literal(A, 1.5955e-125, "+1.5955E-125")));
  b.end_block();
  Program p = b.build();

  const std::string before = p.dump();
  const std::size_t live = p.node_count();
  ASSERT_LT(live, p.arena().expr_count() + p.arena().stmt_count());
  p.compact();
  EXPECT_EQ(p.arena().expr_count() + p.arena().stmt_count(), live);
  // dump() renders the preserved literal spelling and the loop body.
  EXPECT_EQ(p.dump(), before);
  EXPECT_NE(p.dump().find("+1.5955E-125"), std::string::npos);
}

TEST(Serialize, RejectsGarbage) {
  using gpudiff::support::Json;
  Arena A;
  EXPECT_THROW(expr_from_json(A, Json::parse(R"({"k":"wat"})")), std::runtime_error);
  EXPECT_THROW(stmt_from_json(A, Json::parse(R"({"k":"wat"})")), std::runtime_error);
}

/// Property: random generated programs survive JSON round-trips with
/// byte-identical re-serialization, byte-identical rendered source, and
/// bit-identical execution of the parsed copy (both backends).
class ProgramRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ProgramRoundTrip, JsonPreservesProgramAndExecution) {
  gpudiff::gen::GenConfig cfg;
  cfg.precision = GetParam() % 2 == 0 ? Precision::FP64 : Precision::FP32;
  gpudiff::gen::Generator g(cfg, 99);
  gpudiff::gen::InputGenerator ig(99);
  const Program p = g.generate(static_cast<std::uint64_t>(GetParam()));

  // serialize -> parse -> re-serialize must be byte-equal: the wire format
  // is structural, so arena pool layout never leaks into the JSON.
  const gpudiff::support::Json j1 = program_to_json(p);
  const Program q = program_from_json(j1);
  const gpudiff::support::Json j2 = program_to_json(q);
  EXPECT_EQ(j1.dump(), j2.dump());

  ASSERT_EQ(p.params().size(), q.params().size());
  EXPECT_EQ(p.precision(), q.precision());
  EXPECT_EQ(p.dump(), q.dump());
  ASSERT_EQ(p.body().size(), q.body().size());
  EXPECT_EQ(p.node_count(), q.node_count());

  // Execution replayed from the parsed copy is bit-identical to the
  // original arena, at every level, on both platforms and both backends.
  const auto args = ig.generate(p, static_cast<std::uint64_t>(GetParam()), 0);
  namespace opt = gpudiff::opt;
  namespace vgpu = gpudiff::vgpu;
  for (const opt::OptLevel level : opt::kAllOptLevels) {
    for (const opt::Toolchain tc : {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
      const opt::Executable ep = opt::compile(p, {tc, level, false});
      const opt::Executable eq = opt::compile(q, {tc, level, false});
      const auto rp = vgpu::run_kernel(ep, args);
      const auto rq = vgpu::run_kernel(eq, args);
      EXPECT_EQ(rp.value_bits, rq.value_bits);
      EXPECT_EQ(rp.flags.raw(), rq.flags.raw());
      EXPECT_EQ(rp.op_count, rq.op_count);
      const auto tp = vgpu::run_kernel_tree(ep, args);
      const auto tq = vgpu::run_kernel_tree(eq, args);
      EXPECT_EQ(tp.value_bits, tq.value_bits);
      EXPECT_EQ(rp.value_bits, tp.value_bits);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramRoundTrip, ::testing::Range(0, 24));

}  // namespace
