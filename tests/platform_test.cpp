// Tests for the platform registry (opt/platform.hpp) and the N-way
// differential core it feeds: registry lookup and strict selection
// parsing, the scenario configurations' FP-environment effects, and the
// consistency of an N-way comparison with the pairwise runs it bundles.

#include <gtest/gtest.h>

#include <stdexcept>

#include "diff/runner.hpp"
#include "fp/bits.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "ir/builder.hpp"
#include "opt/platform.hpp"

namespace {

using namespace gpudiff;

// ---------------------------------------------------------------------------
// registry + parsing
// ---------------------------------------------------------------------------

TEST(PlatformRegistry, ShipsThePaperPairFirst) {
  const auto& registry = opt::platform_registry();
  ASSERT_GE(registry.size(), 4u);
  EXPECT_LE(registry.size(), opt::kMaxPlatforms);
  EXPECT_EQ(registry[0].name, "nvcc");
  EXPECT_EQ(registry[0].toolchain, opt::Toolchain::Nvcc);
  EXPECT_EQ(registry[1].name, "hipcc");
  EXPECT_EQ(registry[1].toolchain, opt::Toolchain::Hipcc);

  const auto defaults = opt::default_platforms();
  ASSERT_EQ(defaults.size(), 2u);
  EXPECT_EQ(defaults[0], registry[0]);
  EXPECT_EQ(defaults[1], registry[1]);
}

TEST(PlatformRegistry, FindAndNames) {
  ASSERT_NE(opt::find_platform("hipcc-ftz"), nullptr);
  EXPECT_TRUE(opt::find_platform("hipcc-ftz")->force_ftz32);
  ASSERT_NE(opt::find_platform("nvcc-fastmath"), nullptr);
  EXPECT_TRUE(opt::find_platform("nvcc-fastmath")->fast_math);
  EXPECT_EQ(opt::find_platform("gcc"), nullptr);

  const auto names = opt::platform_names(opt::platform_registry());
  EXPECT_EQ(names[0], "nvcc");
  EXPECT_EQ(names[1], "hipcc");
  // Registry names must never collide with the fixed record-JSON keys.
  for (const auto& name : names)
    for (const char* reserved :
         {"program", "input", "level", "class", "classes", "platforms"})
      EXPECT_NE(name, reserved);
}

TEST(PlatformRegistry, ParseListIsStrict) {
  const auto specs = opt::parse_platform_list("hipcc,nvcc,hipcc-ftz");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "hipcc") << "first entry is the baseline";
  EXPECT_EQ(specs[2].name, "hipcc-ftz");

  // Unknown, duplicate, empty-entry, too-few selections all throw with a
  // message naming the problem.
  EXPECT_THROW(opt::parse_platform_list("nvcc,rustc"), std::runtime_error);
  EXPECT_THROW(opt::parse_platform_list("nvcc,nvcc"), std::runtime_error);
  EXPECT_THROW(opt::parse_platform_list("nvcc,,hipcc"), std::runtime_error);
  EXPECT_THROW(opt::parse_platform_list("nvcc"), std::runtime_error);
  EXPECT_THROW(opt::parse_platform_list(""), std::runtime_error);
  try {
    opt::parse_platform_list("nvcc,bogus");
    FAIL() << "expected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos)
        << "error must name the unknown entry: " << e.what();
  }
}

// ---------------------------------------------------------------------------
// scenario configurations
// ---------------------------------------------------------------------------

TEST(PlatformCompile, DefaultSpecsMatchLegacyCompile) {
  // The registry path for "nvcc"/"hipcc" must be bit-for-bit the plain
  // CompileOptions pipeline — the root of default-campaign byte identity.
  gen::GenConfig cfg;
  gen::Generator g(cfg, 42);
  gen::InputGenerator ig(42);
  for (std::uint64_t pi = 0; pi < 8; ++pi) {
    const ir::Program p = g.generate(pi);
    const auto args = ig.generate(p, pi, 0);
    for (const auto level : opt::kAllOptLevels) {
      const auto via_registry =
          opt::compile(p, *opt::find_platform("hipcc"), level);
      const auto legacy =
          opt::compile(p, {opt::Toolchain::Hipcc, level, false});
      EXPECT_EQ(vgpu::run_kernel(via_registry, args).value_bits,
                vgpu::run_kernel(legacy, args).value_bits)
          << opt::to_string(level);
      EXPECT_EQ(via_registry.env, legacy.env);
      EXPECT_EQ(via_registry.mathlib, legacy.mathlib);
    }
  }
}

TEST(PlatformCompile, HipccFtzFlushesSubnormalResults) {
  // comp = x * y with a subnormal product: plain hipcc keeps the FP32
  // denormal, hipcc-ftz flushes it to zero at every level including O0.
  ir::ProgramBuilder b(ir::Precision::FP32);
  ir::Arena& A = b.arena();
  const int x = b.add_scalar_param();
  const int y = b.add_scalar_param();
  b.assign_comp(ir::AssignOp::Add,
                ir::make_bin(A, ir::BinOp::Mul, ir::make_param(A, x),
                             ir::make_param(A, y)));
  const ir::Program p = b.build();
  vgpu::KernelArgs args;
  args.fp = {0.0, 1e-30, 1e-15};  // product 1e-45: subnormal in binary32
  args.ints = {0, 0, 0};

  for (const auto level : {opt::OptLevel::O0, opt::OptLevel::O2}) {
    const auto plain =
        vgpu::run_kernel(opt::compile(p, *opt::find_platform("hipcc"), level), args);
    const auto ftz = vgpu::run_kernel(
        opt::compile(p, *opt::find_platform("hipcc-ftz"), level), args);
    EXPECT_NE(plain.value, 0.0) << opt::to_string(level);
    EXPECT_EQ(ftz.value, 0.0) << opt::to_string(level);
  }
}

TEST(PlatformCompile, NvccFastmathTakesTheFastPipelineWhenOptimized) {
  // nvcc-fastmath at O2 behaves like plain nvcc at O3_FastMath (FTZ32 on,
  // approximate FP32 division), while plain nvcc at O2 stays IEEE.
  ir::ProgramBuilder b(ir::Precision::FP32);
  ir::Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(ir::AssignOp::Add, ir::make_param(A, x));
  const ir::Program p = b.build();

  const auto fast_o2 =
      opt::compile(p, *opt::find_platform("nvcc-fastmath"), opt::OptLevel::O2);
  EXPECT_TRUE(fast_o2.env.ftz32);
  EXPECT_EQ(fast_o2.env.div32, fp::Div32Mode::NvApprox);
  const auto plain_o2 =
      opt::compile(p, *opt::find_platform("nvcc"), opt::OptLevel::O2);
  EXPECT_FALSE(plain_o2.env.ftz32);
  EXPECT_EQ(plain_o2.env.div32, fp::Div32Mode::IEEE);
  // O0 is exempt: fast_math only redirects optimized levels.
  const auto fast_o0 =
      opt::compile(p, *opt::find_platform("nvcc-fastmath"), opt::OptLevel::O0);
  EXPECT_FALSE(fast_o0.env.ftz32);
}

// ---------------------------------------------------------------------------
// N-way comparison consistency
// ---------------------------------------------------------------------------

TEST(NWayCompare, LanesMatchIndependentPairRuns) {
  // An N-way ComparisonResult must agree lane-for-lane with separate
  // {baseline, platform} pair runs: same bits, same pair class.
  const auto specs = opt::parse_platform_list("nvcc,hipcc,hipcc-ftz,nvcc-fastmath");
  gen::GenConfig cfg;
  cfg.precision = ir::Precision::FP32;
  gen::Generator g(cfg, 9);
  gen::InputGenerator ig(9);
  for (std::uint64_t pi = 0; pi < 10; ++pi) {
    const ir::Program p = g.generate(pi);
    std::vector<vgpu::KernelArgs> inputs;
    for (int ii = 0; ii < 4; ++ii) inputs.push_back(ig.generate(p, pi, ii));
    for (const auto level : opt::kAllOptLevels) {
      const diff::CompiledSet set = diff::compile_set(p, specs, level);
      const auto& cmps = diff::compare_batch(set, inputs);
      for (std::size_t ii = 0; ii < inputs.size(); ++ii) {
        const diff::ComparisonResult& nway = cmps[ii];
        ASSERT_EQ(nway.count, specs.size());
        EXPECT_EQ(nway.pair_cls[0], diff::DiscrepancyClass::None);
        diff::DiscrepancyClass first = diff::DiscrepancyClass::None;
        for (std::size_t pl = 1; pl < specs.size(); ++pl) {
          const std::vector<opt::PlatformSpec> pair_specs{specs[0], specs[pl]};
          const auto pair_cmp = diff::compare_run(
              diff::compile_set(p, pair_specs, level), inputs[ii]);
          EXPECT_EQ(nway.platforms[0].bits, pair_cmp.platforms[0].bits);
          EXPECT_EQ(nway.platforms[pl].bits, pair_cmp.platforms[1].bits);
          EXPECT_EQ(nway.pair_cls[pl], pair_cmp.cls);
          if (first == diff::DiscrepancyClass::None) first = pair_cmp.cls;
        }
        EXPECT_EQ(nway.cls, first) << "representative class";
      }
    }
  }
}

TEST(NWayCompare, CompileSetValidatesPlatformCount) {
  ir::ProgramBuilder b(ir::Precision::FP64);
  b.assign_comp(ir::AssignOp::Add, ir::make_literal(b.arena(), 1.0));
  const ir::Program p = b.build();
  EXPECT_THROW(diff::compile_set(p, {}, opt::OptLevel::O0),
               std::invalid_argument);
  std::vector<opt::PlatformSpec> too_many(
      opt::kMaxPlatforms + 1, opt::platform_registry()[0]);
  EXPECT_THROW(diff::compile_set(p, too_many, opt::OptLevel::O0),
               std::invalid_argument);
}

}  // namespace
