// Unit tests for the support layer: rng, json, strings, table, cli,
// thread_pool, retry, lockfile staleness.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>
#include <stdexcept>

#include "support/cli.hpp"
#include "support/cpu.hpp"
#include "support/json.hpp"
#include "support/lockfile.hpp"
#include "support/retry.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace gpudiff::support;

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(77);
  const auto first = a.next();
  a.next();
  a.reseed(77);
  EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
    EXPECT_EQ(rng.below(1), 0u);
    EXPECT_EQ(rng.below(0), 0u);
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    hit_lo |= v == -3;
    hit_hi |= v == 3;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
  EXPECT_EQ(rng.range(5, 5), 5);
  EXPECT_EQ(rng.range(7, 3), 7);  // degenerate: lo returned
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(12);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, WeightedRespectsZeroWeights) {
  Rng rng(13);
  const std::uint32_t weights[] = {0, 5, 0, 5};
  for (int i = 0; i < 1000; ++i) {
    const auto pick = rng.weighted(weights, 4);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Rng, WeightedProportions) {
  Rng rng(14);
  const std::uint32_t weights[] = {1, 9};
  int ones = 0;
  for (int i = 0; i < 20000; ++i)
    if (rng.weighted(weights, 2) == 1) ++ones;
  EXPECT_NEAR(ones / 20000.0, 0.9, 0.02);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(55);
  Rng c1 = parent.split(1);
  Rng c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (c1.next() == c2.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// ---------------------------------------------------------------------------
// Json
// ---------------------------------------------------------------------------

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json::parse("null"), Json(nullptr));
  EXPECT_EQ(Json::parse("true"), Json(true));
  EXPECT_EQ(Json::parse("false"), Json(false));
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-17").as_int(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_EQ(Json::parse("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, DoubleRoundTripsExactly) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-308, 1.7976931348623157e308,
                           -2.2250738585072014e-308, 3.141592653589793};
  for (double v : values) {
    const Json j(v);
    const Json back = Json::parse(j.dump());
    EXPECT_EQ(back.as_double(), v) << j.dump();
  }
}

TEST(Json, IntsStayInts) {
  const Json j = Json::parse("[1, 2.0, 3]");
  EXPECT_EQ(j.as_array()[0].type(), Json::Type::Int);
  EXPECT_EQ(j.as_array()[1].type(), Json::Type::Double);
  EXPECT_EQ(j.as_array()[2].type(), Json::Type::Int);
}

TEST(Json, NestedDocumentRoundTrip) {
  const char* text =
      R"({"a": [1, 2, {"b": "x"}], "c": {"d": null, "e": [true, false]}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(Json::parse(j.dump()), j);
  EXPECT_EQ(Json::parse(j.dump(2)), j);  // pretty-printing parses back too
}

TEST(Json, ObjectAccessors) {
  Json j = Json::object();
  j["x"] = 5;
  j["y"] = "str";
  EXPECT_TRUE(j.contains("x"));
  EXPECT_FALSE(j.contains("z"));
  EXPECT_EQ(j.at("x").as_int(), 5);
  EXPECT_EQ(j.get_or("z", Json(9)).as_int(), 9);
  EXPECT_THROW(j.at("z"), std::runtime_error);
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(Json::parse(""), JsonParseError);
  EXPECT_THROW(Json::parse("{"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,]2"), JsonParseError);
  EXPECT_THROW(Json::parse("tru"), JsonParseError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonParseError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonParseError);
  EXPECT_THROW(Json::parse("[1] trailing"), JsonParseError);
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(Json, DeterministicKeyOrder) {
  Json a = Json::object();
  a["zebra"] = 1;
  a["apple"] = 2;
  EXPECT_EQ(a.dump(), R"({"apple":2,"zebra":1})");
}

TEST(Json, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(Json(std::nan("")).dump(), "null");
  EXPECT_EQ(Json(INFINITY).dump(), "null");
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(format("%.3f", 1.5), "1.500");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\na b\r "), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(ends_with("test.cu", ".cu"));
  EXPECT_FALSE(ends_with("test.hip", ".cu"));
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("aaa", "a", "bb"), "bbbbbb");
  EXPECT_EQ(replace_all("xyx", "y", ""), "xx");
  EXPECT_EQ(replace_all("none", "zz", "q"), "none");
}

TEST(Strings, JoinAndIndent) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(indent("a\nb\n", 2), "  a\n  b\n");
}

TEST(Strings, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(247500), "247,500");
  EXPECT_EQ(with_commas(-1234567), "-1,234,567");
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(Table, RendersHeaderAndRows) {
  Table t("TITLE");
  t.set_header({"A", "B"});
  t.add_row({"1", "22"});
  t.add_rule();
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("TITLE"), std::string::npos);
  EXPECT_NE(out.find(" A "), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  // Every body line has the same width.
  const auto lines = split(out, '\n');
  std::size_t width = lines[1].size();
  for (std::size_t i = 1; i + 1 < lines.size(); ++i)
    EXPECT_EQ(lines[i].size(), width) << "line " << i;
}

TEST(Table, HandlesRaggedRows) {
  Table t;
  t.set_header({"A"});
  t.add_row({"1", "2", "3"});
  EXPECT_NO_THROW(t.render());
}

// ---------------------------------------------------------------------------
// CliParser
// ---------------------------------------------------------------------------

TEST(Cli, ParsesLongAndShortOptions) {
  CliParser cli("prog", "test");
  cli.add_int("count", 'c', "a count", 10);
  cli.add_string("name", 'n', "a name", "default");
  cli.add_flag("verbose", "noisy");
  const char* argv[] = {"prog", "--count", "42", "-n", "zed", "--verbose"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_int("count"), 42);
  EXPECT_EQ(cli.get_string("name"), "zed");
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, EqualsSyntaxAndDefaults) {
  CliParser cli("prog", "test");
  cli.add_int("n", 0, "n", 7);
  cli.add_double("ratio", 0, "r", 0.5);
  const char* argv[] = {"prog", "--n=3"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_EQ(cli.get_int("n"), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("ratio"), 0.5);
}

TEST(Cli, RejectsBadInput) {
  CliParser cli("prog", "test");
  cli.add_int("n", 0, "n", 7);
  const char* bad_value[] = {"prog", "--n", "xyz"};
  EXPECT_FALSE(cli.parse(3, bad_value));
  CliParser cli2("prog", "test");
  cli2.add_int("n", 0, "n", 7);
  const char* unknown[] = {"prog", "--what"};
  EXPECT_FALSE(cli2.parse(2, unknown));
  CliParser cli3("prog", "test");
  cli3.add_int("n", 0, "n", 7);
  const char* missing[] = {"prog", "--n"};
  EXPECT_FALSE(cli3.parse(2, missing));
}

TEST(Cli, UndeclaredAccessThrows) {
  CliParser cli("prog", "test");
  cli.add_flag("f", "flag");
  EXPECT_THROW(cli.get_int("f"), std::logic_error);
  EXPECT_THROW(cli.get_flag("nope"), std::logic_error);
}

// ---------------------------------------------------------------------------
// parallel_for
// ---------------------------------------------------------------------------

TEST(ParallelFor, VisitsEveryIndexOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) { hits[i]++; }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, WorksSingleThreaded) {
  int sum = 0;
  parallel_for(100, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 4950);
}

TEST(ParallelFor, HandlesZeroElements) {
  bool called = false;
  parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100, [](std::size_t i) {
        if (i == 37) throw std::runtime_error("boom");
      }, 4),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// RetryPolicy — the backoff schedule is a pure function of (policy,
// attempt); these tests pin it so no coordinator-path retry loop can
// silently change cadence.
// ---------------------------------------------------------------------------

TEST(Retry, JitterlessScheduleIsCappedExponential) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.1;
  p.max_backoff_seconds = 1.0;
  p.multiplier = 2.0;
  p.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(p.backoff_for(0), 0.1);
  EXPECT_DOUBLE_EQ(p.backoff_for(1), 0.2);
  EXPECT_DOUBLE_EQ(p.backoff_for(2), 0.4);
  EXPECT_DOUBLE_EQ(p.backoff_for(3), 0.8);
  EXPECT_DOUBLE_EQ(p.backoff_for(4), 1.0);   // capped
  EXPECT_DOUBLE_EQ(p.backoff_for(50), 1.0);  // stays capped, no overflow
  EXPECT_DOUBLE_EQ(p.backoff_for(-3), 0.1);  // clamped to attempt 0
}

TEST(Retry, JitterIsDeterministicAndBounded) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.1;
  p.max_backoff_seconds = 10.0;
  p.jitter_fraction = 0.25;
  p.jitter_seed = 42;
  for (int attempt = 0; attempt < 12; ++attempt) {
    const double base = std::min(10.0, 0.1 * std::pow(2.0, attempt));
    const double d = p.backoff_for(attempt);
    EXPECT_EQ(d, p.backoff_for(attempt)) << "jitter must be deterministic";
    EXPECT_GE(d, base * 0.75 - 1e-12) << "attempt " << attempt;
    EXPECT_LT(d, base * 1.25 + 1e-12) << "attempt " << attempt;
  }
  // Different attempts draw different jitter (the whole point of it).
  EXPECT_NE(p.backoff_for(3) / 0.8, p.backoff_for(4) / 1.6);
}

TEST(Retry, SeededForDecoheresWorkersButStaysDeterministic) {
  RetryPolicy base;
  base.jitter_fraction = 0.25;
  const RetryPolicy a = base.seeded_for("host-1");
  const RetryPolicy b = base.seeded_for("host-2");
  EXPECT_NE(a.jitter_seed, b.jitter_seed);
  EXPECT_EQ(a.jitter_seed, base.seeded_for("host-1").jitter_seed);
  // Distinct seeds produce distinct schedules (no thundering herd).
  bool any_differ = false;
  for (int attempt = 0; attempt < 8; ++attempt)
    any_differ = any_differ || a.backoff_for(attempt) != b.backoff_for(attempt);
  EXPECT_TRUE(any_differ);
}

TEST(Retry, InterruptibleSleepHonorsCancellation) {
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(interruptible_sleep(30.0, [] { return true; }));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0) << "cancellation must cut the sleep short";
  EXPECT_TRUE(interruptible_sleep(0.0, nullptr));
}

// ---------------------------------------------------------------------------
// CPU feature probe and GPUDIFF_SIMD override
// ---------------------------------------------------------------------------

TEST(Cpu, FeatureProbeIsStableAndSelfConsistent) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b) << "probed once per process";
  if (a.avx2_usable()) {
    EXPECT_TRUE(a.avx2);
    EXPECT_TRUE(a.fma);
    EXPECT_TRUE(a.os_ymm);
  }
  EXPECT_FALSE(a.to_string().empty());
#if !defined(__x86_64__) && !defined(_M_X64)
  EXPECT_FALSE(a.avx2_usable()) << "non-x86 hosts must report no AVX2";
#endif
}

TEST(Cpu, SimdOverrideRoundTripsAndRestores) {
  const SimdOverride saved = simd_override();
  for (const SimdOverride mode :
       {SimdOverride::Off, SimdOverride::Scalar, SimdOverride::Scalar1,
        SimdOverride::Avx2, SimdOverride::Auto}) {
    set_simd_override(mode);
    EXPECT_EQ(simd_override(), mode) << to_string(mode);
    EXPECT_NE(to_string(mode), nullptr);
  }
  set_simd_override(saved);
  EXPECT_EQ(simd_override(), saved);
}

// ---------------------------------------------------------------------------
// Lockfile staleness under clock skew
// ---------------------------------------------------------------------------

TEST(Lockfile, FileAgeClampsFutureMtimesToFresh) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "gpudiff_skew_test").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  // A skewed peer's clock stamped this file two minutes in the future
  // (age_file with a negative offset pushes the mtime forward).  The age
  // must clamp to "fresh now", not go negative: negative means "no file",
  // and a scheduler confusing skew with absence would instantly steal a
  // live worker's claim.
  ASSERT_TRUE(age_file(path, -120.0));
  EXPECT_DOUBLE_EQ(file_age_seconds(path), 0.0);
  remove_file(path);
  EXPECT_LT(file_age_seconds(path), 0.0) << "missing file stays negative";
}

}  // namespace
