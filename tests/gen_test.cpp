// Tests for the random program and input generators: determinism,
// grammar-constraint conformance (paper Table III), value-class coverage.

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "fp/bits.hpp"
#include "fp/hexfloat.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "ir/serialize.hpp"
#include "opt/pipeline.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::gen;
using ir::ExprKind;
using ir::ParamKind;
using ir::Precision;
using ir::Program;
using ir::StmtKind;

int expr_depth(const ir::Arena& A, ir::ExprId id) {
  const ir::Expr& e = A[id];
  int deepest = 0;
  for (int i = 0; i < e.n_kids; ++i)
    deepest = std::max(deepest, expr_depth(A, e.kid[i]));
  return 1 + deepest;
}

void walk_stmts(const ir::Arena& A, std::span<const ir::StmtId> body,
                const std::function<void(const ir::Stmt&)>& fn) {
  for (ir::StmtId id : body) {
    const ir::Stmt& s = A[id];
    fn(s);
    walk_stmts(A, A.body(s), fn);
  }
}

void walk_exprs(const ir::Arena& A, ir::ExprId id,
                const std::function<void(const ir::Expr&)>& fn) {
  const ir::Expr& e = A[id];
  fn(e);
  for (int i = 0; i < e.n_kids; ++i) walk_exprs(A, e.kid[i], fn);
}

void walk_all_exprs(const Program& p,
                    const std::function<void(const ir::Expr&)>& fn) {
  walk_stmts(p.arena(), p.body(), [&](const ir::Stmt& s) {
    if (s.a) walk_exprs(p.arena(), s.a, fn);
    if (s.b) walk_exprs(p.arena(), s.b, fn);
  });
}

TEST(Generator, DeterministicPerSeedAndIndex) {
  GenConfig cfg;
  Generator g1(cfg, 42), g2(cfg, 42);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(g1.generate(i).dump(), g2.generate(i).dump());
}

TEST(Generator, DifferentIndicesDiffer) {
  GenConfig cfg;
  Generator g(cfg, 42);
  std::set<std::string> sources;
  for (int i = 0; i < 50; ++i) sources.insert(g.generate(i).dump());
  EXPECT_GT(sources.size(), 45u);  // collisions are conceivable but rare
}

TEST(Generator, DifferentSeedsDiffer) {
  GenConfig cfg;
  Generator a(cfg, 1), b(cfg, 2);
  int same = 0;
  for (int i = 0; i < 20; ++i)
    if (a.generate(i).dump() == b.generate(i).dump()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Generator, SignatureRespectsConfig) {
  GenConfig cfg;
  cfg.min_scalar_params = 2;
  cfg.max_scalar_params = 5;
  cfg.max_int_params = 2;
  cfg.max_array_params = 2;
  Generator g(cfg, 7);
  for (int i = 0; i < 60; ++i) {
    const Program p = g.generate(i);
    int ints = 0, scalars = 0, arrays = 0;
    ASSERT_EQ(p.params()[0].kind, ParamKind::Comp);
    for (std::size_t j = 1; j < p.params().size(); ++j) {
      switch (p.params()[j].kind) {
        case ParamKind::Int: ++ints; break;
        case ParamKind::Scalar: ++scalars; break;
        case ParamKind::Array: ++arrays; break;
        default: FAIL() << "comp must be unique";
      }
      EXPECT_EQ(p.params()[j].name, "var_" + std::to_string(j));
    }
    EXPECT_GE(ints, 1);
    EXPECT_LE(ints, 2);
    EXPECT_GE(scalars, 2);
    EXPECT_LE(scalars, 5);
    EXPECT_LE(arrays, 2);
  }
}

TEST(Generator, RespectsExprDepthLimit) {
  GenConfig cfg;
  cfg.max_expr_depth = 3;
  Generator g(cfg, 8);
  for (int i = 0; i < 40; ++i) {
    const Program p = g.generate(i);
    walk_stmts(p.arena(), p.body(), [&](const ir::Stmt& s) {
      // Depth limit applies to value expressions; conditions add a
      // comparison + two depth-2 operand trees on top, and the array
      // subscript adds one more level.
      if (s.a) EXPECT_LE(expr_depth(p.arena(), s.a), 3 + 3);
      if (s.b) EXPECT_LE(expr_depth(p.arena(), s.b), 3 + 3);
    });
  }
}

TEST(Generator, RespectsLoopNestLimit) {
  GenConfig cfg;
  cfg.max_loop_nest = 2;
  Generator g(cfg, 9);
  for (int i = 0; i < 60; ++i) {
    const Program p = g.generate(i);
    const std::function<int(std::span<const ir::StmtId>)> max_nest =
        [&](std::span<const ir::StmtId> body) -> int {
      int deepest = 0;
      for (ir::StmtId id : body) {
        const ir::Stmt& s = p.stmt(id);
        int inner = max_nest(p.body_of(s));
        if (s.kind == StmtKind::For) inner += 1;
        deepest = std::max(deepest, inner);
      }
      return deepest;
    };
    EXPECT_LE(max_nest(std::span<const ir::StmtId>(p.body())), 2);
  }
}

TEST(Generator, FeaturetogglesWork) {
  GenConfig cfg;
  cfg.allow_loops = false;
  cfg.allow_ifs = false;
  cfg.allow_calls = false;
  cfg.allow_arrays = false;
  Generator g(cfg, 10);
  for (int i = 0; i < 30; ++i) {
    const Program p = g.generate(i);
    walk_stmts(p.arena(), p.body(), [](const ir::Stmt& s) {
      EXPECT_NE(s.kind, StmtKind::For);
      EXPECT_NE(s.kind, StmtKind::If);
      EXPECT_NE(s.kind, StmtKind::StoreArray);
    });
    walk_all_exprs(p, [](const ir::Expr& e) {
      EXPECT_NE(e.kind, ExprKind::Call);
      EXPECT_NE(e.kind, ExprKind::ArrayRef);
    });
  }
}

TEST(Generator, LoopVarsReferenceEnclosingLoopsOnly) {
  GenConfig cfg;
  Generator g(cfg, 11);
  for (int i = 0; i < 60; ++i) {
    const Program p = g.generate(i);
    const std::function<void(std::span<const ir::StmtId>, int)> check =
        [&](std::span<const ir::StmtId> body, int depth) {
          for (ir::StmtId id : body) {
            const ir::Stmt& s = p.stmt(id);
            const auto check_expr = [&](ir::ExprId root) {
              walk_exprs(p.arena(), root, [&](const ir::Expr& e) {
                if (e.kind == ExprKind::LoopVarRef) {
                  EXPECT_GE(e.index, 0);
                  EXPECT_LT(e.index, depth);
                }
              });
            };
            if (s.a) check_expr(s.a);
            if (s.b) check_expr(s.b);
            check(p.body_of(s), depth + (s.kind == StmtKind::For ? 1 : 0));
          }
        };
    check(std::span<const ir::StmtId>(p.body()), 0);
  }
}

TEST(Generator, LiteralSpellingParsesBackToValue) {
  support::Rng rng(12);
  ir::Arena A;
  for (int i = 0; i < 3000; ++i) {
    const ir::ExprId lit = random_literal(A, rng, Precision::FP64);
    const std::string text(A.text(lit));
    const auto parsed = fp::parse_double(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(fp::to_bits(*parsed), fp::to_bits(A[lit].lit_value)) << text;
  }
}

TEST(Generator, Fp32LiteralsCarrySuffixAndFloatValue) {
  support::Rng rng(13);
  ir::Arena A;
  for (int i = 0; i < 2000; ++i) {
    const ir::ExprId lit = random_literal(A, rng, Precision::FP32);
    const std::string text(A.text(lit));
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.back(), 'F') << text;
    // Value is exactly representable as float.
    const float f = static_cast<float>(A[lit].lit_value);
    EXPECT_EQ(static_cast<double>(f), A[lit].lit_value);
  }
}

TEST(Generator, TempsDeclaredBeforeUse) {
  GenConfig cfg;
  Generator g(cfg, 14);
  for (int i = 0; i < 60; ++i) {
    const Program p = g.generate(i);
    int declared = 0;
    // Walk in program order; every TempRef must reference a prior decl.
    const std::function<void(std::span<const ir::StmtId>)> scan =
        [&](std::span<const ir::StmtId> body) {
          for (ir::StmtId id : body) {
            const ir::Stmt& s = p.stmt(id);
            const auto check_expr = [&](ir::ExprId root) {
              walk_exprs(p.arena(), root, [&](const ir::Expr& e) {
                if (e.kind == ExprKind::TempRef) {
                  EXPECT_GE(e.index, 1);
                  EXPECT_LE(e.index, declared);
                }
              });
            };
            if (s.a) check_expr(s.a);
            if (s.b) check_expr(s.b);
            scan(p.body_of(s));
            if (s.kind == StmtKind::DeclTemp)
              declared = std::max(declared, static_cast<int>(s.index));
          }
        };
    scan(std::span<const ir::StmtId>(p.body()));
  }
}

TEST(Generator, DescribeMentionsGrammarRows) {
  GenConfig cfg;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("Loops"), std::string::npos);
  EXPECT_NE(d.find("Conditions"), std::string::npos);
  EXPECT_NE(d.find("double"), std::string::npos);
  cfg.precision = Precision::FP32;
  EXPECT_NE(cfg.describe().find("float"), std::string::npos);
}

// ---------------------------------------------------------------------------
// InputGenerator
// ---------------------------------------------------------------------------

TEST(Inputs, Deterministic) {
  GenConfig cfg;
  Generator g(cfg, 20);
  const Program p = g.generate(0);
  InputGenerator a(20), b(20);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(a.generate(p, 0, i), b.generate(p, 0, i));
}

TEST(Inputs, DistinctPerInputIndex) {
  GenConfig cfg;
  Generator g(cfg, 21);
  const Program p = g.generate(0);
  InputGenerator ig(21);
  std::set<std::string> seen;
  for (int i = 0; i < 20; ++i) seen.insert(ig.generate(p, 0, i).to_varity_string(p));
  EXPECT_GT(seen.size(), 18u);
}

TEST(Inputs, IntBoundsAreSmallNonNegative) {
  GenConfig cfg;
  Generator g(cfg, 22);
  InputGenerator ig(22, /*max_trip_count=*/8);
  for (int pi = 0; pi < 20; ++pi) {
    const Program p = g.generate(pi);
    for (int ii = 0; ii < 20; ++ii) {
      const auto args = ig.generate(p, pi, ii);
      for (std::size_t j = 0; j < p.params().size(); ++j) {
        if (p.params()[j].kind != ParamKind::Int) continue;
        EXPECT_GE(args.ints[j], 0);
        EXPECT_LE(args.ints[j], 8);
      }
    }
  }
}

TEST(Inputs, CoversValueClasses) {
  support::Rng rng(23);
  for (Precision prec : {Precision::FP64, Precision::FP32}) {
    // Every class generator produces a value of that class.
    for (int i = 0; i < 200; ++i) {
      const double z = random_value(rng, ValueClass::Zero, prec);
      EXPECT_TRUE(fp::is_zero_bits(z));
      const double sub = random_value(rng, ValueClass::Subnormal, prec);
      if (prec == Precision::FP32)
        EXPECT_TRUE(fp::is_subnormal_bits(static_cast<float>(sub))) << sub;
      else
        EXPECT_TRUE(fp::is_subnormal_bits(sub)) << sub;
      const double huge = fp::abs_bits(random_value(rng, ValueClass::Huge, prec));
      EXPECT_TRUE(fp::is_finite_bits(huge));
      EXPECT_GE(huge, prec == Precision::FP32 ? 1e34 : 1e291);
      const double mod = fp::abs_bits(random_value(rng, ValueClass::Moderate, prec));
      EXPECT_GE(mod, 0.09);
      EXPECT_LT(mod, 2e4);
    }
  }
}

TEST(Inputs, BothSignsAppear) {
  support::Rng rng(24);
  int neg = 0;
  for (int i = 0; i < 1000; ++i)
    if (fp::sign_bit(random_value(rng, ValueClass::Moderate, Precision::FP64)))
      ++neg;
  EXPECT_GT(neg, 400);
  EXPECT_LT(neg, 600);
}

TEST(Inputs, GeneratedProgramsRunWithGeneratedInputs) {
  // Smoke property: every generated (program, input) pair executes without
  // throwing on both platforms at every level.
  GenConfig cfg;
  Generator g(cfg, 25);
  InputGenerator ig(25);
  for (int pi = 0; pi < 15; ++pi) {
    const Program p = g.generate(pi);
    for (int ii = 0; ii < 3; ++ii) {
      const auto args = ig.generate(p, pi, ii);
      for (auto level : opt::kAllOptLevels) {
        for (auto t : {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
          EXPECT_NO_THROW({
            const auto exe = opt::compile(p, {t, level, false});
            (void)vgpu::run_kernel(exe, args);
          });
        }
      }
    }
  }
}

}  // namespace
