// Network-elastic coordination tests: the TCP lease transport against the
// in-process coordinator, under fault injection.  The load-bearing
// property is the same byte-identity the scheduler tests lock down, with
// the network allowed to misbehave: however the coordinator restarts,
// connections sever, frames drop, duplicate or reorder, and workers die,
// the merged CampaignResults must be byte-identical to the single-process
// diff::run_campaign output — and the filesystem transport's output.
//
// Process-death drills (SIGKILLed coordinator, SIGKILLed worker) drive
// the real gpudiff-coordinator / gpudiff-campaign binaries as children
// (via GPUDIFF_COORDINATOR_BIN / GPUDIFF_CAMPAIGN_BIN, wired by CMake) so
// recovery runs the actual startup paths, not in-process simulations.

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/checkpoint.hpp"
#include "campaign/coordinator.hpp"
#include "campaign/merge.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/transport.hpp"
#include "diff/campaign.hpp"
#include "net/wire.hpp"
#include "support/json.hpp"
#include "support/lockfile.hpp"
#include "support/rng.hpp"

#include "fault_proxy.hpp"

namespace {

using namespace gpudiff;
using campaign::Coordinator;
using campaign::CoordinatorOptions;
using campaign::TcpLeaseTransport;
using campaign::TcpTransportOptions;
using campaign::TransportError;
using campaign::WorkerOptions;
using campaign::WorkerOutcome;
using gpudiff::testing::Direction;
using gpudiff::testing::Fault;
using gpudiff::testing::FaultKind;
using gpudiff::testing::FaultProxy;

diff::CampaignConfig small_config(int programs = 45) {
  diff::CampaignConfig cfg;
  cfg.num_programs = programs;
  cfg.inputs_per_program = 5;
  cfg.seed = 1234;
  return cfg;
}

std::string canonical(const diff::CampaignResults& results) {
  return campaign::results_to_json(results).dump(1);
}

/// A scratch directory removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
};

/// Fast-cadence retry policy so fault tests converge in milliseconds, not
/// the production default's seconds.
support::RetryPolicy test_retry() {
  support::RetryPolicy p;
  p.max_attempts = 6;
  p.initial_backoff_seconds = 0.005;
  p.max_backoff_seconds = 0.05;
  return p;
}

TcpTransportOptions transport_options(int port, const std::string& worker,
                                      const std::string& journal_dir) {
  TcpTransportOptions topts;
  topts.host = "127.0.0.1";
  topts.port = port;
  topts.worker_id = worker;
  topts.journal_dir = journal_dir;
  topts.retry = test_retry();
  // Short enough that a dropped frame costs a quarter second, not the
  // production default's patient five — fault tests drop a lot of frames.
  topts.request_timeout_seconds = 0.25;
  topts.connect_timeout_seconds = 0.25;
  return topts;
}

/// Run one TCP worker to completion in this thread.
WorkerOutcome run_tcp_worker(const diff::CampaignConfig& cfg, int port,
                             const std::string& worker,
                             const std::string& journal_dir,
                             double stale_after = 1e9) {
  WorkerOptions wopts;
  wopts.coordinator = "127.0.0.1:" + std::to_string(port);
  wopts.journal_dir = journal_dir;
  wopts.lease_size = 4;
  wopts.stale_after_seconds = stale_after;
  wopts.worker_id = worker;
  wopts.retry = test_retry();
  wopts.request_timeout_seconds = 0.25;
  return campaign::run_worker(cfg, wopts);
}

bool wait_until(const std::function<bool()>& pred, double seconds = 30.0) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return false;
}

int count_files_with_suffix(const std::string& dir, const std::string& suffix) {
  int n = 0;
  if (!std::filesystem::is_directory(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Transport equivalence: the TCP coordinator path produces byte-identical
// results to the single process and to the filesystem board.
// ---------------------------------------------------------------------------

TEST(Coordinator, TcpWorkerMatchesSingleProcessByteForByte) {
  const auto cfg = small_config();
  TempDir state("gpudiff_coord_single");
  TempDir journal("gpudiff_coord_single_journal");
  CoordinatorOptions copts;
  copts.dir = state.str();
  Coordinator coordinator(copts);
  coordinator.start();

  const WorkerOutcome outcome =
      run_tcp_worker(cfg, coordinator.port(), "tcp-w0", journal.str());
  EXPECT_TRUE(outcome.campaign_complete);
  EXPECT_EQ(outcome.leases_completed, campaign::lease_count(45, 4));
  EXPECT_EQ(outcome.programs_executed, 45u);
  coordinator.stop();

  // The coordinator's state directory IS a lease directory: the ordinary
  // merge consumes it with no TCP-specific code path.
  EXPECT_TRUE(campaign::campaign_complete(state.str()));
  EXPECT_EQ(count_files_with_suffix(state.str(), ".claim"), 0)
      << "completed worker left claims on the coordinator";
  EXPECT_EQ(canonical(campaign::merge_lease_dir(state.str())),
            canonical(diff::run_campaign(cfg)));
}

TEST(Coordinator, TcpAndFilesystemTransportsAreByteIdentical) {
  const auto cfg = small_config();
  // Filesystem board.
  TempDir fs_dir("gpudiff_coord_fs_equiv");
  WorkerOptions fs_opts;
  fs_opts.dir = fs_dir.str();
  fs_opts.lease_size = 4;
  fs_opts.worker_id = "fs-w0";
  ASSERT_TRUE(campaign::run_worker(cfg, fs_opts).campaign_complete);
  // TCP coordinator.
  TempDir state("gpudiff_coord_tcp_equiv");
  TempDir journal("gpudiff_coord_tcp_equiv_journal");
  CoordinatorOptions copts;
  copts.dir = state.str();
  Coordinator coordinator(copts);
  coordinator.start();
  ASSERT_TRUE(run_tcp_worker(cfg, coordinator.port(), "tcp-w0", journal.str())
                  .campaign_complete);
  coordinator.stop();

  // Same manifest bytes, same per-lease done-file bytes, same merge.
  EXPECT_EQ(support::read_file(campaign::LeaseBoard::manifest_path(fs_dir.str())),
            support::read_file(campaign::LeaseBoard::manifest_path(state.str())));
  for (int k = 0; k < campaign::lease_count(45, 4); ++k)
    EXPECT_EQ(
        support::read_file(campaign::LeaseBoard::done_path(fs_dir.str(), k)),
        support::read_file(campaign::LeaseBoard::done_path(state.str(), k)))
        << "lease " << k;
  EXPECT_EQ(canonical(campaign::merge_lease_dir(fs_dir.str())),
            canonical(campaign::merge_lease_dir(state.str())));
}

TEST(Coordinator, ThreeTcpWorkerFleetByteForByte) {
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir state("gpudiff_coord_fleet");
  TempDir journal("gpudiff_coord_fleet_journal");
  CoordinatorOptions copts;
  copts.dir = state.str();
  Coordinator coordinator(copts);
  coordinator.start();

  std::vector<WorkerOutcome> outcomes(3);
  std::vector<std::thread> workers;
  for (int i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      outcomes[static_cast<std::size_t>(i)] = run_tcp_worker(
          cfg, coordinator.port(), "fleet-" + std::to_string(i),
          journal.str() + "-" + std::to_string(i));
    });
  }
  for (auto& w : workers) w.join();
  coordinator.stop();

  int total_leases = 0;
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.campaign_complete);
    total_leases += o.leases_completed;
  }
  // The coordinator serializes claims, so a live fleet runs every lease
  // exactly once.
  EXPECT_EQ(total_leases, campaign::lease_count(45, 4));
  EXPECT_EQ(canonical(campaign::merge_lease_dir(state.str())), direct);
}

// ---------------------------------------------------------------------------
// Hello discipline: version and config mismatches are refused at connect.
// ---------------------------------------------------------------------------

TEST(Coordinator, RefusesConfigMismatchFatally) {
  TempDir state("gpudiff_coord_mismatch");
  TempDir journal("gpudiff_coord_mismatch_journal");
  CoordinatorOptions copts;
  copts.dir = state.str();
  Coordinator coordinator(copts);
  coordinator.start();

  const auto cfg_a = small_config(45);
  TcpLeaseTransport first(
      transport_options(coordinator.port(), "w-a", journal.str() + "-a"));
  first.publish_or_verify_manifest(campaign::config_to_json(cfg_a),
                                   4, campaign::lease_count(45, 4));

  const auto cfg_b = small_config(46);  // a different campaign
  TcpLeaseTransport second(
      transport_options(coordinator.port(), "w-b", journal.str() + "-b"));
  try {
    second.publish_or_verify_manifest(campaign::config_to_json(cfg_b),
                                      4, campaign::lease_count(46, 4));
    FAIL() << "mismatched campaign must be refused";
  } catch (const TransportError&) {
    FAIL() << "a config mismatch is a permanent refusal, not a transient "
              "failure to retry";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("refused"), std::string::npos)
        << e.what();
  }
  coordinator.stop();
}

TEST(Coordinator, RefusesWireVersionMismatchFatally) {
  TempDir state("gpudiff_coord_version");
  CoordinatorOptions copts;
  copts.dir = state.str();
  Coordinator coordinator(copts);
  coordinator.start();

  net::Socket s = net::connect_tcp("127.0.0.1", coordinator.port(), 2.0);
  ASSERT_TRUE(s.valid());
  support::Json hello = support::Json::object();
  hello["op"] = "hello";
  hello["version"] = net::kWireVersion + 99;
  hello["worker"] = "time-traveler";
  hello["config"] = support::Json::object();
  hello["lease_size"] = 4;
  hello["lease_count"] = 1;
  hello["seq"] = 1;
  ASSERT_EQ(net::send_message(s, hello, 2.0), net::IoStatus::Ok);
  support::Json resp;
  ASSERT_EQ(net::recv_message(s, &resp, 5.0), net::IoStatus::Ok);
  EXPECT_FALSE(resp.at("ok").as_bool());
  EXPECT_TRUE(resp.at("fatal").as_bool())
      << "version skew must not be retried";
  coordinator.stop();
}

// ---------------------------------------------------------------------------
// Durability: a coordinator restarted on its state directory recovers
// every claim and every done block.
// ---------------------------------------------------------------------------

TEST(Coordinator, RecoversClaimsAndDoneBlocksAcrossRestart) {
  const auto cfg = small_config();
  const int count = campaign::lease_count(45, 4);
  const support::Json echo = campaign::config_to_json(cfg);
  TempDir state("gpudiff_coord_restart");
  TempDir journal("gpudiff_coord_restart_journal");

  {
    CoordinatorOptions copts;
    copts.dir = state.str();
    Coordinator coordinator(copts);
    coordinator.start();
    TcpLeaseTransport t(
        transport_options(coordinator.port(), "w0", journal.str()));
    t.publish_or_verify_manifest(echo, 4, count);
    ASSERT_TRUE(t.try_claim(0));
    // Publish lease 1 the long way so the done file carries real bytes.
    ASSERT_TRUE(t.try_claim(1));
    const auto [b, e] = campaign::lease_range(45, count, 1);
    auto out = diff::run_campaign_range(cfg, b, e);
    campaign::ResultBlock block;
    block.config_echo = echo;
    block.begin = b;
    block.end = e;
    block.per_level = std::move(out.per_level);
    block.records = std::move(out.records);
    t.publish_done(1, count, block);
    t.release(1);
    coordinator.stop();
  }  // SIGKILL stand-in: no graceful shutdown protocol exists to miss

  CoordinatorOptions copts;
  copts.dir = state.str();
  Coordinator revived(copts);
  revived.start();
  TcpLeaseTransport t(
      transport_options(revived.port(), "w1", journal.str() + "-b"));
  t.publish_or_verify_manifest(echo, 4, count);
  // The done block survived.
  EXPECT_TRUE(t.is_done(1));
  EXPECT_EQ(t.list_done(), std::vector<int>{1});
  // w0's claim on lease 0 survived, restarted fresh: another worker cannot
  // claim it, its age is live (>= 0), and stealing still works.
  EXPECT_FALSE(t.try_claim(0));
  EXPECT_GE(t.claim_age_seconds(0), 0.0);
  EXPECT_TRUE(t.try_steal(0));
  // A wrong-campaign hello is refused even though the manifest was seeded
  // before the restart.
  TcpLeaseTransport wrong(
      transport_options(revived.port(), "w2", journal.str() + "-c"));
  EXPECT_THROW(wrong.publish_or_verify_manifest(
                   campaign::config_to_json(small_config(46)), 4,
                   campaign::lease_count(46, 4)),
               std::runtime_error);
  revived.stop();
}

// ---------------------------------------------------------------------------
// Graceful degradation: a worker that loses the coordinator journals its
// publishes locally and republishes on reconnect.
// ---------------------------------------------------------------------------

TEST(Coordinator, DisconnectedWorkerJournalsAndRepublishes) {
  const auto cfg = small_config();
  const int count = campaign::lease_count(45, 4);
  const support::Json echo = campaign::config_to_json(cfg);
  TempDir state("gpudiff_coord_journal");
  TempDir journal("gpudiff_coord_journal_journal");

  int port = 0;
  {
    CoordinatorOptions copts;
    copts.dir = state.str();
    Coordinator coordinator(copts);
    coordinator.start();
    port = coordinator.port();
    TcpLeaseTransport t(transport_options(port, "w0", journal.str()));
    t.publish_or_verify_manifest(echo, 4, count);
    ASSERT_TRUE(t.try_claim(0));
    coordinator.stop();

    // Coordinator is gone.  The publish must not be lost — and must not
    // throw: it degrades to the local journal.
    const auto [b, e] = campaign::lease_range(45, count, 0);
    auto out = diff::run_campaign_range(cfg, b, e);
    campaign::ResultBlock block;
    block.config_echo = echo;
    block.begin = b;
    block.end = e;
    block.per_level = std::move(out.per_level);
    block.records = std::move(out.records);
    t.publish_done(0, count, block);
    EXPECT_EQ(t.journaled_blocks(), 1);
    EXPECT_FALSE(t.drain()) << "drain must not report clean while a block "
                               "is stranded locally";

    // Coordinator returns (same state dir, same port).  The reconnect
    // flushes the journal before anything else.
    CoordinatorOptions ropts;
    ropts.dir = state.str();
    ropts.port = port;
    Coordinator revived(ropts);
    revived.start();
    EXPECT_TRUE(t.drain());
    EXPECT_EQ(t.journaled_blocks(), 0);
    EXPECT_TRUE(t.is_done(0));
    revived.stop();
  }
  // The republished block landed in the durable directory with the exact
  // bytes a connected publish would have written.
  EXPECT_TRUE(std::filesystem::exists(
      campaign::LeaseBoard::done_path(state.str(), 0)));
}

// ---------------------------------------------------------------------------
// Fault injection: randomized drop/duplicate/reorder/delay through the
// proxy; the campaign must converge byte-identically, no range lost.
// ---------------------------------------------------------------------------

TEST(Coordinator, RandomizedFaultyNetworkConvergesByteForByte) {
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir state("gpudiff_coord_chaos");
  TempDir journal("gpudiff_coord_chaos_journal");
  CoordinatorOptions copts;
  copts.dir = state.str();
  Coordinator coordinator(copts);
  coordinator.start();

  // Deterministically seeded fault schedule: ~72% forward, 10% drop, 10%
  // duplicate, 5% reorder, 3% delayed forward, in both directions.  The
  // hello exchange (line 0 of each direction) is spared only of reorder —
  // nothing meaningful precedes it to reorder behind.
  auto rng = std::make_shared<support::SplitMix64>(0xfa017deadbeefULL);
  auto decide_mu = std::make_shared<std::mutex>();
  FaultProxy proxy(
      "127.0.0.1", coordinator.port(),
      [rng, decide_mu](Direction, int) {
        std::lock_guard<std::mutex> lock(*decide_mu);
        const std::uint64_t roll = rng->next() % 100;
        Fault f;
        if (roll < 10) f.kind = FaultKind::Drop;
        else if (roll < 20) f.kind = FaultKind::Duplicate;
        else if (roll < 25) f.kind = FaultKind::Reorder;
        else if (roll < 28) f.delay_seconds = 0.01;
        return f;
      });

  std::vector<WorkerOutcome> outcomes(2);
  std::vector<std::thread> workers;
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([&, i] {
      outcomes[static_cast<std::size_t>(i)] = run_tcp_worker(
          cfg, proxy.port(), "chaos-" + std::to_string(i),
          journal.str() + "-" + std::to_string(i),
          /*stale_after=*/5.0);
    });
  }
  for (auto& w : workers) w.join();
  proxy.stop();
  coordinator.stop();

  for (const auto& o : outcomes) EXPECT_TRUE(o.campaign_complete);
  // merge_lease_dir validates the blocks cover [0, 45) contiguously — a
  // lost range cannot merge, let alone merge clean.
  EXPECT_EQ(canonical(campaign::merge_lease_dir(state.str())), direct);
}

TEST(Coordinator, SeveredConnectionsReconnectAndConverge) {
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir state("gpudiff_coord_sever");
  TempDir journal("gpudiff_coord_sever_journal");
  CoordinatorOptions copts;
  copts.dir = state.str();
  Coordinator coordinator(copts);
  coordinator.start();

  // Cut the connection on every 13th server response: workers ride the
  // sever with a reconnect (fresh hello) and a retried request.
  std::atomic<int> severs{0};
  FaultProxy proxy("127.0.0.1", coordinator.port(),
                   [&severs](Direction dir, int line) {
                     Fault f;
                     if (dir == Direction::ServerToClient && line > 0 &&
                         line % 13 == 0) {
                       f.kind = FaultKind::Sever;
                       severs.fetch_add(1);
                     }
                     return f;
                   });

  const WorkerOutcome outcome = run_tcp_worker(
      cfg, proxy.port(), "sever-w0", journal.str(), /*stale_after=*/5.0);
  proxy.stop();
  coordinator.stop();

  EXPECT_TRUE(outcome.campaign_complete);
  EXPECT_GT(severs.load(), 0) << "the drill never actually severed";
  EXPECT_GT(proxy.connections_accepted(), 1)
      << "a sever must force a real reconnect";
  EXPECT_EQ(canonical(campaign::merge_lease_dir(state.str())), direct);
}

// ---------------------------------------------------------------------------
// Merge hardening: crash litter and corrupt done files.
// ---------------------------------------------------------------------------

TEST(Coordinator, MergeNamesCorruptDoneFileAndQuarantineSetsItAside) {
  const auto cfg = small_config();
  TempDir dir("gpudiff_coord_corrupt");
  WorkerOptions wopts;
  wopts.dir = dir.str();
  wopts.lease_size = 4;
  wopts.worker_id = "w0";
  ASSERT_TRUE(campaign::run_worker(cfg, wopts).campaign_complete);
  const std::string direct = canonical(diff::run_campaign(cfg));

  // Truncate lease 3's done file mid-JSON — the torn write the atomic
  // rename discipline prevents, injected here as if a disk had failed.
  const std::string victim = campaign::LeaseBoard::done_path(dir.str(), 3);
  const std::string whole = support::read_file(victim);
  support::write_file(victim, whole.substr(0, whole.size() / 2));

  // Default merge: abort, naming the corrupt file.
  try {
    campaign::merge_lease_dir(dir.str());
    FAIL() << "corrupt done file must not merge";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(victim), std::string::npos)
        << "diagnostic must name the corrupt file, got: " << e.what();
  }

  // Quarantine merge: the corrupt file is set aside and the diagnostic
  // says what to do next.
  campaign::LeaseMergeOptions mopts;
  mopts.quarantine = true;
  try {
    campaign::merge_lease_dir(dir.str(), mopts);
    FAIL() << "quarantine still fails the merge (the lease is missing)";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("quarantined"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(victim), std::string::npos);
  }
  EXPECT_FALSE(std::filesystem::exists(victim));
  EXPECT_TRUE(std::filesystem::exists(victim + ".quarantined"));

  // A worker re-run regenerates the quarantined lease; the merge then
  // produces the exact single-process bytes.
  wopts.worker_id = "w1";
  ASSERT_TRUE(campaign::run_worker(cfg, wopts).campaign_complete);
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())), direct);
}

TEST(Coordinator, ShardMergeSkipsStaleTempLitter) {
  const auto cfg = small_config();
  TempDir dir("gpudiff_coord_tmplitter");
  campaign::ShardRunOptions sopts;
  sopts.checkpoint_dir = dir.str();
  ASSERT_TRUE(campaign::run_shard(cfg, sopts).complete());
  // Crash litter whose name would match the shard glob but for the ".tmp"
  // marker: a killed checkpointer's half-written temp.
  support::write_file(dir.str() + "/shard-0-of-1.json.tmp.999", "{\"trunc");
  support::write_file(dir.str() + "/shard-junk.tmp.json", "not json at all");
  EXPECT_EQ(canonical(campaign::merge_checkpoint_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));
}

// ---------------------------------------------------------------------------
// Process-death drills: SIGKILL the real coordinator binary mid-campaign,
// restart it, SIGKILL a worker — the fleet still converges byte-for-byte.
// ---------------------------------------------------------------------------

const char* coordinator_binary() {
  return std::getenv("GPUDIFF_COORDINATOR_BIN");
}
const char* campaign_binary() { return std::getenv("GPUDIFF_CAMPAIGN_BIN"); }

pid_t spawn_child(const char* bin, const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(bin));
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    // Keep child chatter out of the gtest stream.
    std::freopen("/dev/null", "w", stdout);
    ::execv(bin, argv.data());
    std::_Exit(127);
  }
  return pid;
}

int wait_for_exit(pid_t pid) {
  int status = 0;
  ::waitpid(pid, &status, 0);
  return status;
}

/// Reserve an ephemeral port for a child coordinator: bind, read, close.
/// (Racy in principle; in practice the child rebinds within milliseconds
/// and SO_REUSEADDR covers the TIME_WAIT case.)
int pick_free_port() {
  net::Listener probe;
  probe.listen("127.0.0.1", 0);
  return probe.port();
}

TEST(Coordinator, KillRestartDrillMergesByteIdentical) {
  if (coordinator_binary() == nullptr || campaign_binary() == nullptr)
    GTEST_SKIP() << "GPUDIFF_COORDINATOR_BIN / GPUDIFF_CAMPAIGN_BIN not set "
                    "(run under CTest)";
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir state("gpudiff_coord_drill");
  TempDir journal("gpudiff_coord_drill_journal");
  const int port = pick_free_port();
  const std::string endpoint = "127.0.0.1:" + std::to_string(port);

  const auto spawn_coordinator = [&] {
    return spawn_child(coordinator_binary(),
                       {"--dir", state.str(), "--port", std::to_string(port)});
  };
  const auto spawn_worker = [&](int i) {
    return spawn_child(
        campaign_binary(),
        {"--coordinator", endpoint, "--journal-dir",
         journal.str() + "-" + std::to_string(i), "--programs", "45",
         "--inputs", "5", "--seed", "1234", "--lease-size", "4",
         "--heartbeat", "0.1", "--stale-after", "3", "--worker-id",
         "drill-" + std::to_string(i)});
  };

  pid_t coord = spawn_coordinator();
  ASSERT_GT(coord, 0);
  std::vector<pid_t> workers;
  for (int i = 0; i < 3; ++i) workers.push_back(spawn_worker(i));

  // Let the fleet make real progress, then SIGKILL the coordinator — no
  // shutdown path, no flush beyond what every publish already did.
  ASSERT_TRUE(wait_until([&] {
    return count_files_with_suffix(state.str(), ".done.json") >= 2;
  })) << "fleet never started publishing";
  ASSERT_EQ(::kill(coord, SIGKILL), 0);
  wait_for_exit(coord);

  // While the coordinator is down, SIGKILL one worker too.
  ASSERT_EQ(::kill(workers[0], SIGKILL), 0);
  wait_for_exit(workers[0]);

  // Restart the coordinator on the same directory and port.  The
  // survivors' retry policies reconnect; the dead worker's recovered
  // claim ages out (stale-after 3s) and is stolen.
  coord = spawn_coordinator();
  ASSERT_GT(coord, 0);

  for (std::size_t i = 1; i < workers.size(); ++i) {
    const int status = wait_for_exit(workers[i]);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "worker " << i << " exit status " << status;
  }
  ASSERT_EQ(::kill(coord, SIGTERM), 0);
  wait_for_exit(coord);

  EXPECT_TRUE(campaign::campaign_complete(state.str()));
  EXPECT_EQ(canonical(campaign::merge_lease_dir(state.str())), direct)
      << "kill/restart drill diverged from the single-process bytes";
}

}  // namespace
