// Tests for the virtual compilers: individual passes and the vendor
// pipelines (level semantics, library binding, environment flags).

#include <gtest/gtest.h>

#include <cmath>

#include "fp/bits.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "ir/builder.hpp"
#include "opt/passes.hpp"
#include "opt/pipeline.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::ir;
using namespace gpudiff::opt;

/// Builder pre-seeded with four scalar params (var_1..var_4).
ProgramBuilder four_scalar_builder(Precision prec = Precision::FP64) {
  ProgramBuilder b(prec);
  b.add_scalar_param();  // var_1
  b.add_scalar_param();  // var_2
  b.add_scalar_param();  // var_3
  b.add_scalar_param();  // var_4
  return b;
}

/// The root expression of the i-th top-level statement.
const Expr& root_expr(const Program& p, std::size_t i = 0) {
  return p.expr(p.stmt(p.body()[i]).a);
}

const Expr& kid(const Program& p, const Expr& e, int i) {
  return p.expr(e.kid[i]);
}

// ---------------------------------------------------------------------------
// fold_constants
// ---------------------------------------------------------------------------

TEST(FoldConstants, FoldsLiteralSubtrees) {
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Mul,
                         make_bin(A, BinOp::Add, make_literal(A, 1.5),
                                  make_literal(A, 2.5)),
                         make_param(A, 1)));
  Program p = b.build();
  fold_constants(p);
  const Expr& root = root_expr(p);
  ASSERT_EQ(root.kind, ExprKind::Bin);
  EXPECT_EQ(kid(p, root, 0).kind, ExprKind::Literal);
  EXPECT_EQ(kid(p, root, 0).lit_value, 4.0);
}

TEST(FoldConstants, FoldsNegation) {
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_neg(A, make_literal(A, -0.0)));
  Program p = b.build();
  fold_constants(p);
  const Expr& root = root_expr(p);
  EXPECT_EQ(root.kind, ExprKind::Literal);
  EXPECT_FALSE(fp::sign_bit(root.lit_value));  // -(-0.0) == +0.0
}

TEST(FoldConstants, RespectsFp32Precision) {
  // 1e30f * 1e30f overflows float but not double.
  ProgramBuilder b = four_scalar_builder(Precision::FP32);
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_bin(A, BinOp::Mul, make_literal(A, 1e30),
                                        make_literal(A, 1e30)));
  Program p = b.build();
  fold_constants(p);
  EXPECT_TRUE(fp::is_inf_bits(root_expr(p).lit_value));
}

TEST(FoldConstants, LeavesCallsAlone) {
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_call(A, MathFn::Cos, make_literal(A, 1.0)));
  Program p = b.build();
  fold_constants(p);
  EXPECT_EQ(root_expr(p).kind, ExprKind::Call);
}

// ---------------------------------------------------------------------------
// contract_fma
// ---------------------------------------------------------------------------

TEST(ContractFma, SingleProductContractsIdenticallyBothWays) {
  for (auto pref : {FmaPreference::LeftProduct, FmaPreference::RightProduct}) {
    ProgramBuilder b = four_scalar_builder();
    Arena& A = b.arena();
    b.assign_comp(AssignOp::Add,
                  make_bin(A, BinOp::Add,
                           make_bin(A, BinOp::Mul, make_param(A, 1), make_param(A, 2)),
                           make_param(A, 3)));
    Program p = b.build();
    contract_fma(p, pref);
    const Expr& root = root_expr(p);
    ASSERT_EQ(root.kind, ExprKind::Fma);
    EXPECT_EQ(kid(p, root, 0).index, 1);
    EXPECT_EQ(kid(p, root, 1).index, 2);
    EXPECT_EQ(kid(p, root, 2).index, 3);
  }
}

TEST(ContractFma, TieBreakDiffersOnDoubleProduct) {
  const auto make = [] {
    ProgramBuilder b = four_scalar_builder();
    Arena& A = b.arena();
    b.assign_comp(AssignOp::Add,
                  make_bin(A, BinOp::Add,
                           make_bin(A, BinOp::Mul, make_param(A, 1), make_param(A, 2)),
                           make_bin(A, BinOp::Mul, make_param(A, 3), make_param(A, 4))));
    return b.build();
  };
  Program left = make();
  contract_fma(left, FmaPreference::LeftProduct);
  const Expr& lr = root_expr(left);
  ASSERT_EQ(lr.kind, ExprKind::Fma);
  EXPECT_EQ(kid(left, lr, 0).index, 1);  // fma(a, b, c*d)
  EXPECT_EQ(kid(left, lr, 2).kind, ExprKind::Bin);

  Program right = make();
  contract_fma(right, FmaPreference::RightProduct);
  const Expr& rr = root_expr(right);
  ASSERT_EQ(rr.kind, ExprKind::Fma);
  EXPECT_EQ(kid(right, rr, 0).index, 3);  // fma(c, d, a*b)
  EXPECT_EQ(kid(right, rr, 2).kind, ExprKind::Bin);
}

TEST(ContractFma, SubtractionNegatesCorrectOperand) {
  // a*b - c  ->  fma(a, b, -c)
  {
    ProgramBuilder b = four_scalar_builder();
    Arena& A = b.arena();
    b.assign_comp(AssignOp::Add,
                  make_bin(A, BinOp::Sub,
                           make_bin(A, BinOp::Mul, make_param(A, 1), make_param(A, 2)),
                           make_param(A, 3)));
    Program p = b.build();
    contract_fma(p, FmaPreference::LeftProduct);
    const Expr& root = root_expr(p);
    ASSERT_EQ(root.kind, ExprKind::Fma);
    EXPECT_EQ(kid(p, root, 2).kind, ExprKind::Neg);
  }
  // c - a*b  ->  fma(-a, b, c)
  {
    ProgramBuilder b = four_scalar_builder();
    Arena& A = b.arena();
    b.assign_comp(AssignOp::Add,
                  make_bin(A, BinOp::Sub, make_param(A, 3),
                           make_bin(A, BinOp::Mul, make_param(A, 1), make_param(A, 2))));
    Program q = b.build();
    contract_fma(q, FmaPreference::LeftProduct);
    const Expr& root2 = root_expr(q);
    ASSERT_EQ(root2.kind, ExprKind::Fma);
    EXPECT_EQ(kid(q, root2, 0).kind, ExprKind::Neg);
  }
}

TEST(ContractFma, ContractionChangesRoundingObservably) {
  // a*b + c with a*b requiring the fused wide intermediate:
  // a = 1+2^-52, b = 1-2^-52 -> a*b = 1 - 2^-104 (exact product).
  // Unfused: rounds to 1.0, +(-1.0) = 0.  Fused: fma gives -2^-104 exactly.
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Add,
                         make_bin(A, BinOp::Mul, make_param(A, 1), make_param(A, 2)),
                         make_param(A, 3)));
  Program p = b.build();
  vgpu::KernelArgs args;
  args.fp = {0.0, 1.0 + 0x1p-52, 1.0 - 0x1p-52, -1.0, 0.0};
  args.ints = {0, 0, 0, 0, 0};

  CompileOptions o0;
  const Executable e0 = compile(p, o0);
  EXPECT_EQ(vgpu::run_kernel(e0, args).value, 0.0);

  CompileOptions o1;
  o1.level = OptLevel::O1;
  const Executable e1 = compile(p, o1);
  EXPECT_EQ(vgpu::run_kernel(e1, args).value, -0x1p-104);
}

TEST(ContractFma, CountsNodes) {
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Add,
                         make_bin(A, BinOp::Mul, make_param(A, 1), make_param(A, 2)),
                         make_param(A, 3)));
  Program p = b.build();
  EXPECT_EQ(count_fma_nodes(p), 0u);
  contract_fma(p, FmaPreference::LeftProduct);
  EXPECT_EQ(count_fma_nodes(p), 1u);
}

// ---------------------------------------------------------------------------
// if_convert
// ---------------------------------------------------------------------------

TEST(IfConvert, ConvertsSingleCheapGuardedAdd) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.begin_if(make_cmp(A, CmpOp::Ge, make_param(A, 0), make_param(A, x)));
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Mul, make_literal(A, 2.0), make_param(A, x)));
  b.end_block();
  Program p = b.build();
  if_convert(p);
  ASSERT_EQ(p.stmt(p.body()[0]).kind, StmtKind::AssignComp);
  const Expr& root = root_expr(p);
  ASSERT_EQ(root.kind, ExprKind::Bin);
  EXPECT_EQ(root.bin_op, BinOp::Mul);
  EXPECT_EQ(kid(p, root, 0).kind, ExprKind::BoolToFp);
}

TEST(IfConvert, SkipsMultiStatementBodies) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.begin_if(make_cmp(A, CmpOp::Ge, make_param(A, 0), make_param(A, x)));
  b.assign_comp(AssignOp::Add, make_param(A, x));
  b.assign_comp(AssignOp::Add, make_param(A, x));
  b.end_block();
  Program p = b.build();
  if_convert(p);
  EXPECT_EQ(p.stmt(p.body()[0]).kind, StmtKind::If);
}

TEST(IfConvert, SkipsExpensiveOrCallBodies) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.begin_if(make_cmp(A, CmpOp::Ge, make_param(A, 0), make_param(A, x)));
  b.assign_comp(AssignOp::Add, make_call(A, MathFn::Cos, make_param(A, x)));
  b.end_block();
  Program p = b.build();
  if_convert(p);
  EXPECT_EQ(p.stmt(p.body()[0]).kind, StmtKind::If);  // call: not speculated
}

TEST(IfConvert, ZeroTimesInfinityProducesNaN) {
  // Case Study 3's mechanism in miniature: guarded add of an infinite value
  // with a false condition.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();  // will be huge -> 2*x = inf
  b.begin_if(make_cmp(A, CmpOp::Gt, make_param(A, 0), make_literal(A, 0.0)));
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Mul, make_literal(A, 2.0), make_param(A, x)));
  b.end_block();
  Program p = b.build();

  vgpu::KernelArgs args;
  args.fp = {-1.0, 1.5e308};  // comp = -1 (condition false), 2*x overflows
  args.ints = {0, 0};

  CompileOptions nv{Toolchain::Nvcc, OptLevel::O1, false};
  CompileOptions amd{Toolchain::Hipcc, OptLevel::O1, false};
  const auto nv_run = vgpu::run_kernel(compile(p, nv), args);
  const auto amd_run = vgpu::run_kernel(compile(p, amd), args);
  EXPECT_EQ(nv_run.value, -1.0);                 // branch not taken
  EXPECT_TRUE(std::isnan(amd_run.value));        // comp += 0 * inf
}

// ---------------------------------------------------------------------------
// reassociate
// ---------------------------------------------------------------------------

ExprId chain4(Arena& A) {
  return make_bin(
      A, BinOp::Add,
      make_bin(A, BinOp::Add,
               make_bin(A, BinOp::Add, make_param(A, 1), make_param(A, 2)),
               make_param(A, 3)),
      make_param(A, 4));
}

TEST(Reassociate, BalancedTreeReshapesLongChains) {
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, chain4(A));
  Program p = b.build();
  reassociate(p, ReassocStyle::BalancedTree, 4);
  const Expr& root = root_expr(p);
  ASSERT_EQ(root.kind, ExprKind::Bin);
  // (a+b) + (c+d): both children are additions.
  EXPECT_EQ(kid(p, root, 0).kind, ExprKind::Bin);
  EXPECT_EQ(kid(p, root, 1).kind, ExprKind::Bin);
  EXPECT_EQ(kid(p, kid(p, root, 1), 0).index, 3);
}

TEST(Reassociate, FlattenLeftKeepsCanonicalShape) {
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Add, make_param(A, 1),
                         make_bin(A, BinOp::Add, make_param(A, 2),
                                  make_bin(A, BinOp::Add, make_param(A, 3),
                                           make_param(A, 4)))));
  Program p = b.build();
  reassociate(p, ReassocStyle::FlattenLeft, 4);
  // ((a+b)+c)+d: left spine.
  const Expr* e = &root_expr(p);
  EXPECT_EQ(kid(p, *e, 1).index, 4);
  e = &kid(p, *e, 0);
  EXPECT_EQ(kid(p, *e, 1).index, 3);
  e = &kid(p, *e, 0);
  EXPECT_EQ(kid(p, *e, 1).index, 2);
  EXPECT_EQ(kid(p, *e, 0).index, 1);
}

TEST(Reassociate, ShortChainsUntouchedByThreshold) {
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Add, make_param(A, 1),
                         make_bin(A, BinOp::Add, make_param(A, 2),
                                  make_param(A, 3))));
  Program p = b.build();
  Program q = p;
  reassociate(p, ReassocStyle::BalancedTree, 4);
  reassociate(q, ReassocStyle::FlattenLeft, 4);
  // Both rebuild 3-chains identically (left shape), so shapes agree.
  EXPECT_EQ(p.dump(), q.dump());
}

TEST(Reassociate, MulChainsToo) {
  ProgramBuilder b = four_scalar_builder();
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Mul,
                         make_bin(A, BinOp::Mul,
                                  make_bin(A, BinOp::Mul, make_param(A, 1),
                                           make_param(A, 2)),
                                  make_param(A, 3)),
                         make_param(A, 4)));
  Program p = b.build();
  reassociate(p, ReassocStyle::BalancedTree, 4);
  EXPECT_EQ(kid(p, root_expr(p), 1).kind, ExprKind::Bin);
}

// ---------------------------------------------------------------------------
// reciprocal_division
// ---------------------------------------------------------------------------

TEST(ReciprocalDivision, OnlyInsideLoops) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  const int x = b.add_scalar_param();
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Div, make_param(A, 0), make_param(A, x)));
  b.begin_for(n);
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Div, make_param(A, 0), make_param(A, x)));
  b.end_block();
  Program p = b.build();
  reciprocal_division(p);
  // Top-level division untouched.
  EXPECT_EQ(root_expr(p).bin_op, BinOp::Div);
  // Loop-body division rewritten to multiply by reciprocal.
  const Stmt& loop = p.stmt(p.body()[1]);
  const Expr& in_loop = p.expr(p.stmt(p.body_of(loop)[0]).a);
  ASSERT_EQ(in_loop.kind, ExprKind::Bin);
  EXPECT_EQ(in_loop.bin_op, BinOp::Mul);
  ASSERT_EQ(kid(p, in_loop, 1).kind, ExprKind::Bin);
  EXPECT_EQ(kid(p, in_loop, 1).bin_op, BinOp::Div);
  EXPECT_EQ(kid(p, kid(p, in_loop, 1), 0).lit_value, 1.0);
}

TEST(ReciprocalDivision, SkipsPowerOfTwoDenominators) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  b.begin_for(n);
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Div, make_param(A, 0), make_literal(A, 4.0)));
  b.end_block();
  Program p = b.build();
  reciprocal_division(p);
  const Stmt& loop = p.stmt(p.body()[0]);
  EXPECT_EQ(p.expr(p.stmt(p.body_of(loop)[0]).a).bin_op, BinOp::Div);
}

// ---------------------------------------------------------------------------
// pipeline
// ---------------------------------------------------------------------------

TEST(Pipeline, LevelNamesRoundTrip) {
  for (OptLevel l : kAllOptLevels) {
    OptLevel back;
    ASSERT_TRUE(parse_opt_level(to_string(l), &back));
    EXPECT_EQ(back, l);
  }
  OptLevel dummy;
  EXPECT_FALSE(parse_opt_level("O9", &dummy));
}

TEST(Pipeline, MathLibSelection) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 5);
  const Program p = g.generate(0);

  const auto lib_name = [&](Toolchain t, OptLevel l, bool hipify) {
    CompileOptions o{t, l, hipify};
    return compile(p, o).mathlib->name();
  };
  EXPECT_EQ(lib_name(Toolchain::Nvcc, OptLevel::O0, false), "nv-libdevice-sim");
  EXPECT_EQ(lib_name(Toolchain::Nvcc, OptLevel::O3, false), "nv-libdevice-sim");
  EXPECT_EQ(lib_name(Toolchain::Nvcc, OptLevel::O3_FastMath, false),
            "nv-fastmath-sim");
  EXPECT_EQ(lib_name(Toolchain::Hipcc, OptLevel::O2, false), "amd-ocml-sim");
  EXPECT_EQ(lib_name(Toolchain::Hipcc, OptLevel::O3_FastMath, false),
            "amd-ocml-native-sim");
  EXPECT_EQ(lib_name(Toolchain::Hipcc, OptLevel::O0, true), "hip-cuda-compat-sim");
  EXPECT_EQ(lib_name(Toolchain::Hipcc, OptLevel::O3_FastMath, true),
            "hip-cuda-compat-native-sim");
}

TEST(Pipeline, EnvironmentFlags) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 6);
  const Program p = g.generate(1);

  CompileOptions nv_fm{Toolchain::Nvcc, OptLevel::O3_FastMath, false};
  const Executable e1 = compile(p, nv_fm);
  EXPECT_TRUE(e1.env.ftz32);
  EXPECT_TRUE(e1.env.daz32);
  EXPECT_EQ(e1.env.div32, fp::Div32Mode::NvApprox);

  CompileOptions amd_fm{Toolchain::Hipcc, OptLevel::O3_FastMath, false};
  const Executable e2 = compile(p, amd_fm);
  EXPECT_FALSE(e2.env.ftz32);
  EXPECT_EQ(e2.env.div32, fp::Div32Mode::AmdApprox);
  EXPECT_FALSE(e2.env.naive_minmax);  // FP64 program keeps IEEE min/max

  Program p32 = p;
  p32.set_precision(Precision::FP32);
  const Executable e3 = compile(p32, amd_fm);
  EXPECT_TRUE(e3.env.naive_minmax);

  CompileOptions o0{Toolchain::Nvcc, OptLevel::O0, false};
  const Executable e4 = compile(p, o0);
  EXPECT_EQ(e4.env, fp::FpEnv{});
}

TEST(Pipeline, O1EqualsO2EqualsO3Numerically) {
  // The paper's Tables V/VII/IX show identical counts for O1/O2/O3; our
  // pipelines guarantee it: same numerics-relevant passes at all three.
  gen::GenConfig cfg;
  gen::Generator g(cfg, 7);
  gen::InputGenerator ig(7);
  for (int pi = 0; pi < 40; ++pi) {
    const Program p = g.generate(pi);
    const auto args = ig.generate(p, pi, 0);
    for (Toolchain t : {Toolchain::Nvcc, Toolchain::Hipcc}) {
      const auto r1 = vgpu::run_kernel(compile(p, {t, OptLevel::O1, false}), args);
      const auto r2 = vgpu::run_kernel(compile(p, {t, OptLevel::O2, false}), args);
      const auto r3 = vgpu::run_kernel(compile(p, {t, OptLevel::O3, false}), args);
      EXPECT_EQ(r1.value_bits, r2.value_bits) << "prog " << pi;
      EXPECT_EQ(r2.value_bits, r3.value_bits) << "prog " << pi;
    }
  }
}

TEST(Pipeline, DescriptionSpellsFlags) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 8);
  const Program p = g.generate(0);
  EXPECT_EQ(compile(p, {Toolchain::Nvcc, OptLevel::O2, false}).description(),
            "nvcc-sim -O2");
  EXPECT_EQ(compile(p, {Toolchain::Nvcc, OptLevel::O3_FastMath, false}).description(),
            "nvcc-sim -O3 -use_fast_math");
  EXPECT_EQ(compile(p, {Toolchain::Hipcc, OptLevel::O3_FastMath, false}).description(),
            "hipcc-sim -O3 -DHIP_FAST_MATH");
}

TEST(Pipeline, CompileDoesNotMutateInput) {
  gen::GenConfig cfg;
  gen::Generator g(cfg, 9);
  const Program p = g.generate(2);
  const std::string before = p.dump();
  (void)compile(p, {Toolchain::Hipcc, OptLevel::O3_FastMath, false});
  EXPECT_EQ(p.dump(), before);
}

}  // namespace
