// Integration tests: the paper's three case studies reproduced end-to-end,
// plus cross-module pipelines (generate -> emit -> hipify -> compile -> run).

#include <gtest/gtest.h>

#include <cmath>

#include "diff/metadata.hpp"
#include "diff/runner.hpp"
#include "emit/emit.hpp"
#include "fp/bits.hpp"
#include "fp/hexfloat.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "hipify/hipify.hpp"
#include "ir/builder.hpp"
#include "vgpu/pseudo_asm.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::ir;
using diff::DiscrepancyClass;

// ---------------------------------------------------------------------------
// Case Study 1 (paper Fig. 4): fmod-driven Number-vs-Number divergence at O0.
// ---------------------------------------------------------------------------

TEST(CaseStudy1, FmodExtremeRatioDivergesLikeFig4) {
  // The kernel's key expression, reduced to its essence:
  //   comp -= fmod(-1.7538E305 * (var_8 / (+0.0 / var_9 - +1.3065E-306)),
  //                +1.5793E-307);
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int var_8 = b.add_scalar_param();
  const int var_9 = b.add_scalar_param();
  b.assign_comp(
      AssignOp::Sub,
      make_call(A, 
          MathFn::Fmod,
          make_bin(A, BinOp::Mul, make_literal(A, -1.7538e305, "-1.7538E305"),
                   make_bin(A, BinOp::Div, make_param(A, var_8),
                            make_bin(A, BinOp::Sub,
                                     make_bin(A, BinOp::Div, make_literal(A, 0.0, "+0.0"),
                                              make_param(A, var_9)),
                                     make_literal(A, 1.3065e-306, "+1.3065E-306")))),
          make_literal(A, 1.5793e-307, "+1.5793E-307")));
  const Program p = b.build();

  // Paper inputs: var_8 = +1.1757E-322, var_9 = +1.7130E-319.
  vgpu::KernelArgs args;
  args.fp = {0.0, 1.1757e-322, 1.713e-319};
  args.ints = {0, 0, 0};

  const auto cmp = diff::run_differential(p, args, opt::OptLevel::O0);
  ASSERT_TRUE(cmp.discrepant());
  // Both are small real numbers that disagree, as in the paper
  // (8.655e-306 vs 9.340e-306 there; the inner fmod drives the difference).
  EXPECT_TRUE(cmp.cls == DiscrepancyClass::Num_Num ||
              cmp.cls == DiscrepancyClass::Num_Zero)
      << to_string(cmp.cls);

  // The inner fmod itself: the AMD side computes the exact remainder the
  // paper reports for hipcc.
  const double inner_x = -1.7538e305 * (1.1757e-322 / (0.0 / 1.713e-319 - 1.3065e-306));
  EXPECT_EQ(fp::print_g17(inner_x), "1.5917195493481116e+289");
  const double amd_fmod =
      vmath::amd_ocml().call64(MathFn::Fmod, inner_x, 1.5793e-307);
  EXPECT_EQ(fp::print_g17(amd_fmod), "7.1923082856620736e-309");
  const double nv_fmod =
      vmath::nv_libdevice().call64(MathFn::Fmod, inner_x, 1.5793e-307);
  EXPECT_NE(fp::to_bits(nv_fmod), fp::to_bits(amd_fmod));
}

TEST(CaseStudy1, MostInputsForTheSameProgramAgree) {
  // Paper: "out of ten randomly generated inputs, only this specific input
  // created a discrepancy."  Ordinary-magnitude inputs agree.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int x = b.add_scalar_param();
  const int y = b.add_scalar_param();
  b.assign_comp(AssignOp::Add,
                make_call(A, MathFn::Fmod, make_param(A, x), make_param(A, y)));
  const Program p = b.build();
  const diff::CompiledSet set = diff::compile_pair(p, opt::OptLevel::O0);
  int diffs = 0;
  // All pairs keep the exponent gap below the 1024-bit unrolled range.
  for (double xv : {1.5, 1e10, -3.7e100, 2.5e305}) {
    for (double yv : {0.3, 123.0, 8e-3}) {
      vgpu::KernelArgs args;
      args.fp = {0.0, xv, yv};
      args.ints = {0, 0, 0};
      if (diff::compare_run(set, args).discrepant()) ++diffs;
    }
  }
  EXPECT_EQ(diffs, 0);
}

// ---------------------------------------------------------------------------
// Case Study 2 (paper Fig. 5): ceil of a tiny value -> Inf vs Number at O0.
// ---------------------------------------------------------------------------

TEST(CaseStudy2, CeilTinyValueInfVsNumber) {
  // Fig. 5 verbatim:
  //   double tmp_1 = +1.1147E-307;
  //   comp += tmp_1 / ceil(+1.5955E-125);
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int t = b.decl_temp(make_literal(A, 1.1147e-307, "+1.1147E-307"));
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Div, make_temp(A, t),
                         make_call(A, MathFn::Ceil,
                                   make_literal(A, 1.5955e-125, "+1.5955E-125"))));
  const Program p = b.build();
  vgpu::KernelArgs args;
  args.fp = {1.2374e-306};  // paper input
  args.ints = {0};

  for (auto level : opt::kAllOptLevels) {
    const auto cmp = diff::run_differential(p, args, level);
    ASSERT_TRUE(cmp.discrepant()) << opt::to_string(level);
    EXPECT_EQ(cmp.cls, DiscrepancyClass::Inf_Num);
    EXPECT_EQ(cmp.platforms[0].printed(), "inf");  // nvcc: ceil -> 0 -> div by zero
    // hipcc: 1.34887e-306 in the paper (printed there at lower precision).
    EXPECT_EQ(cmp.platforms[1].printed().substr(0, 7), "1.34887");
    EXPECT_EQ(cmp.platforms[1].outcome.cls, fp::OutcomeClass::Number);
  }
}

// ---------------------------------------------------------------------------
// Case Study 3 (paper Fig. 6): -inf at O0 on both, -inf vs -nan at O1+.
// ---------------------------------------------------------------------------

Program case_study_3_program() {
  // Reduced Fig. 6: comp saturates to -inf via cosh/fabs arithmetic, a loop
  // keeps it at -inf, and a guarded single-statement add of an infinite
  // product is if-converted by hipcc-sim at O1+.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int var_1 = b.add_int_param();
  const int var_2 = b.add_scalar_param();
  const int var_5 = b.add_scalar_param();
  const int var_8 = b.add_scalar_param();
  // tmp_1 = (small - cosh(huge)) -> -inf
  const int t = b.decl_temp(make_bin(A, 
      BinOp::Sub, make_literal(A, -1.8007e-323, "-1.8007E-323"),
      make_call(A, MathFn::Cosh, make_bin(A, BinOp::Div, make_param(A, var_2),
                                       make_literal(A, -1.7569e192, "-1.7569E192")))));
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Add, make_temp(A, t),
                         make_call(A, MathFn::Fabs, make_literal(A, 1.5726e-307,
                                                              "+1.5726E-307"))));
  b.begin_for(var_1);
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Div, make_literal(A, 1.9903e306, "+1.9903E306"),
                         make_param(A, var_5)));
  b.end_block();
  // Guarded single add whose value overflows to +inf: the if-conversion
  // candidate.  Condition is false because comp == -inf.
  b.begin_if(make_cmp(A, CmpOp::Ge, make_param(A, 0 /*comp*/),
                      make_literal(A, -1.4205e305, "-1.4205E305")));
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Mul, make_literal(A, 1.3803e305, "+1.3803E305"),
                         make_param(A, var_8)));
  b.end_block();
  return b.build();
}

TEST(CaseStudy3, ConsistentAtO0DivergesAtO1Plus) {
  const Program p = case_study_3_program();
  vgpu::KernelArgs args;
  // var_1=5, var_2=+1.9121E306, var_5=-1.8994E-311, var_8=+1.2915E306.
  args.fp = {-1.5548e-320, 0.0, 1.9121e306, -1.8994e-311, 1.2915e306};
  args.ints = {0, 5, 0, 0, 0};

  // O0: both produce -inf (paper: nvcc -O0 -inf, hipcc -O0 -inf).
  const auto o0 = diff::run_differential(p, args, opt::OptLevel::O0);
  EXPECT_FALSE(o0.discrepant());
  EXPECT_EQ(o0.platforms[0].printed(), "-inf");
  EXPECT_EQ(o0.platforms[1].printed(), "-inf");

  // O1..O3: nvcc keeps -inf, hipcc's predicate-multiply if-conversion turns
  // the untaken branch's 0 * (+inf) into NaN (paper: -inf vs -nan).
  for (auto level : {opt::OptLevel::O1, opt::OptLevel::O2, opt::OptLevel::O3}) {
    const auto cmp = diff::run_differential(p, args, level);
    ASSERT_TRUE(cmp.discrepant()) << opt::to_string(level);
    EXPECT_EQ(cmp.cls, DiscrepancyClass::NaN_Inf);
    EXPECT_EQ(cmp.platforms[0].printed(), "-inf");
    EXPECT_EQ(cmp.platforms[1].printed(), "-nan");
  }
}

TEST(CaseStudy3, AssemblyShowsTheRootCause) {
  const Program p = case_study_3_program();
  const auto amd_o1 =
      opt::compile(p, {opt::Toolchain::Hipcc, opt::OptLevel::O1, false});
  EXPECT_NE(vgpu::disassemble(amd_o1).find("if-conversion"), std::string::npos);
  const auto nv_o1 =
      opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O1, false});
  EXPECT_EQ(vgpu::disassemble(nv_o1).find("if-conversion"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Cross-module pipeline properties
// ---------------------------------------------------------------------------

TEST(Pipeline, HipifyModeChangesOnlyTheHipccSide) {
  // The nvcc side of a HIPIFY campaign is identical to the native one.
  gen::GenConfig cfg;
  gen::Generator g(cfg, 77);
  gen::InputGenerator ig(77);
  for (int pi = 0; pi < 10; ++pi) {
    const Program p = g.generate(pi);
    const auto args = ig.generate(p, pi, 0);
    for (auto level : {opt::OptLevel::O0, opt::OptLevel::O3_FastMath}) {
      const auto native = diff::compile_pair(p, level, false);
      const auto converted = diff::compile_pair(p, level, true);
      EXPECT_EQ(vgpu::run_kernel(native.exes[0], args).value_bits,
                vgpu::run_kernel(converted.exes[0], args).value_bits);
    }
  }
}

TEST(Pipeline, HipifiedSourceTextMatchesHipifyCompileMode) {
  // The textual pipeline (emit CUDA -> hipify) and the compile-mode flag are
  // two views of the same experiment; the translated source must exist and
  // carry the constructs the compat binding models.
  gen::GenConfig cfg;
  gen::Generator g(cfg, 78);
  const Program p = g.generate(3);
  const auto converted = hipify::hipify_source(emit::emit_cuda(p));
  EXPECT_EQ(converted.source.find("cuda"), std::string::npos);
  const auto set = diff::compile_pair(p, opt::OptLevel::O0, true);
  EXPECT_EQ(set.exes[1].mathlib->name(), "hip-cuda-compat-sim");
}

TEST(Pipeline, MetadataDrivenHipifyCampaignReproduces) {
  diff::CampaignConfig cfg;
  cfg.num_programs = 25;
  cfg.inputs_per_program = 4;
  cfg.hipify_converted = true;
  cfg.seed = 9;
  diff::Metadata md = diff::Metadata::create(cfg);
  md.record_platform(*opt::find_platform("nvcc"));
  md.record_platform(*opt::find_platform("hipcc"));
  const auto via_md = md.analyze();
  const auto direct = diff::run_campaign(cfg);
  for (std::size_t li = 0; li < direct.per_level.size(); ++li)
    EXPECT_EQ(via_md.per_level[li].pairs, direct.per_level[li].pairs);
}

TEST(Pipeline, ExceptionFlagsTrackSeriousEventsAcrossCampaign) {
  // Paper Table II events are observable through the virtual FPU: find at
  // least one run raising each of the serious exception classes.
  gen::GenConfig cfg;
  gen::Generator g(cfg, 80);
  gen::InputGenerator ig(80);
  bool saw_overflow = false, saw_invalid = false, saw_divzero = false,
       saw_underflow = false;
  for (int pi = 0; pi < 120; ++pi) {
    const Program p = g.generate(pi);
    const auto exe = opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O0, false});
    for (int ii = 0; ii < 3; ++ii) {
      const auto r = vgpu::run_kernel(exe, ig.generate(p, pi, ii));
      saw_overflow |= r.flags.overflow();
      saw_invalid |= r.flags.invalid();
      saw_divzero |= r.flags.divide_by_zero();
      saw_underflow |= r.flags.underflow();
    }
  }
  EXPECT_TRUE(saw_overflow);
  EXPECT_TRUE(saw_invalid);
  EXPECT_TRUE(saw_divzero);
  EXPECT_TRUE(saw_underflow);
}

}  // namespace
