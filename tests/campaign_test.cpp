// Tests for the campaign orchestration subsystem: deterministic shard
// partitioning, checkpoint/resume, the merge stage and record-cap
// semantics.  The load-bearing property throughout is byte-identity: the
// canonical JSON of a merged sharded (or killed-and-resumed) campaign must
// equal the unsharded diff::run_campaign output exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/merge.hpp"
#include "campaign/scheduler.hpp"
#include "campaign/shard.hpp"
#include "diff/campaign.hpp"
#include "ir/builder.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;
using campaign::ShardProgress;
using campaign::ShardRunOptions;
using campaign::ShardSpec;

diff::CampaignConfig small_config(int programs = 45) {
  diff::CampaignConfig cfg;
  cfg.num_programs = programs;
  cfg.inputs_per_program = 5;
  cfg.seed = 1234;
  return cfg;
}

std::string canonical(const diff::CampaignResults& results) {
  return campaign::results_to_json(results).dump(1);
}

diff::CampaignResults run_sharded(const diff::CampaignConfig& cfg, int count) {
  std::vector<ShardProgress> parts;
  for (int i = 0; i < count; ++i) {
    ShardRunOptions options;
    options.shard = {i, count};
    parts.push_back(campaign::run_shard(cfg, options));
  }
  return campaign::merge_shards(std::move(parts));
}

/// A scratch directory removed on destruction.
struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
  std::string str() const { return path.string(); }
};

// ---------------------------------------------------------------------------
// shard partitioning
// ---------------------------------------------------------------------------

TEST(ShardSpec, PartitionCoversRangeDisjointly) {
  for (int n : {0, 1, 5, 45, 354, 3540}) {
    for (int count : {1, 2, 3, 7, 64}) {
      std::uint64_t expected_begin = 0;
      for (int i = 0; i < count; ++i) {
        const auto [begin, end] = ShardSpec{i, count}.program_range(n);
        EXPECT_EQ(begin, expected_begin) << n << " " << count << " " << i;
        EXPECT_LE(begin, end);
        // Shard sizes are balanced to within one program.
        const auto size = end - begin;
        EXPECT_LE(size, static_cast<std::uint64_t>(n) / count + 1);
        expected_begin = end;
      }
      EXPECT_EQ(expected_begin, static_cast<std::uint64_t>(n));
    }
  }
}

// Property test over randomized geometries: both partitioners — the fixed
// i/N shard carve and the scheduler's lease partitioner — must produce
// ranges that are pairwise disjoint, cover exactly [0, n), and differ in
// size by at most one.
TEST(ShardSpec, RandomizedPartitionsAreDisjointCoveringAndBalanced) {
  support::Rng rng(20260726);
  const auto check_partition = [](int n, int count,
                                  const auto& range_of) {
    std::uint64_t expected_begin = 0;
    std::uint64_t min_size = ~0ull, max_size = 0;
    for (int i = 0; i < count; ++i) {
      const auto [begin, end] = range_of(i);
      // begin == previous end: disjoint and gap-free in one check.
      ASSERT_EQ(begin, expected_begin) << "n=" << n << " count=" << count
                                       << " part=" << i;
      ASSERT_LE(begin, end);
      min_size = std::min(min_size, end - begin);
      max_size = std::max(max_size, end - begin);
      expected_begin = end;
    }
    ASSERT_EQ(expected_begin, static_cast<std::uint64_t>(n)) << "coverage";
    if (count > 0)
      ASSERT_LE(max_size - min_size, 1u)
          << "n=" << n << " count=" << count << " is unbalanced";
  };

  for (int trial = 0; trial < 300; ++trial) {
    const int n = static_cast<int>(rng.below(4000));
    // Fixed carve: shard i of N.
    const int N = 1 + static_cast<int>(rng.below(48));
    check_partition(n, N, [&](int i) {
      return ShardSpec{i, N}.program_range(n);
    });
    // Lease partitioner: K = ceil(n / L) balanced ranges, none above L.
    const int L = 1 + static_cast<int>(rng.below(130));
    const int K = campaign::lease_count(n, L);
    ASSERT_EQ(K, n == 0 ? 0 : (n + L - 1) / L) << "n=" << n << " L=" << L;
    check_partition(n, K, [&](int k) {
      const auto range = campaign::lease_range(n, K, k);
      EXPECT_LE(range.second - range.first, static_cast<std::uint64_t>(L))
          << "lease " << k << " exceeds the requested lease size";
      return range;
    });
  }

  EXPECT_THROW(campaign::lease_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW(campaign::lease_range(10, 3, 3), std::invalid_argument);
  EXPECT_THROW(campaign::lease_range(-1, 3, 0), std::invalid_argument);
  EXPECT_THROW(campaign::lease_count(-1, 4), std::invalid_argument);
  EXPECT_EQ(campaign::lease_count(0, 4), 0);
  EXPECT_EQ(campaign::lease_count(45, 1000), 1);
  EXPECT_EQ(campaign::lease_count(45, 0), 45) << "lease size clamps to >= 1";
}

TEST(ShardSpec, ValidatesAndParses) {
  EXPECT_THROW(ShardSpec({2, 2}).validate(), std::invalid_argument);
  EXPECT_THROW(ShardSpec({-1, 2}).validate(), std::invalid_argument);
  EXPECT_THROW(ShardSpec({0, 0}).validate(), std::invalid_argument);

  ShardSpec spec;
  EXPECT_TRUE(campaign::parse_shard("2/8", &spec));
  EXPECT_EQ(spec, (ShardSpec{2, 8}));
  EXPECT_EQ(campaign::to_string(spec), "2/8");
  for (const char* bad : {"", "3", "/4", "3/", "8/8", "-1/4", "a/4", "1/b", "1/2/3"})
    EXPECT_FALSE(campaign::parse_shard(bad, nullptr)) << bad;
}

// ---------------------------------------------------------------------------
// shard equivalence: merged == unsharded, byte for byte
// ---------------------------------------------------------------------------

TEST(ShardEquivalence, MergeMatchesUnshardedByteForByte) {
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  for (int count : {2, 3, 7}) {
    EXPECT_EQ(canonical(run_sharded(cfg, count)), direct) << count << " shards";
  }
}

TEST(ShardEquivalence, HoldsForFp32AndHipify) {
  auto cfg = small_config(30);
  cfg.gen.precision = ir::Precision::FP32;
  cfg.hipify_converted = true;
  EXPECT_EQ(canonical(run_sharded(cfg, 3)), canonical(diff::run_campaign(cfg)));
}

TEST(ShardEquivalence, MoreShardsThanProgramsStillMerges) {
  const auto cfg = small_config(3);
  EXPECT_EQ(canonical(run_sharded(cfg, 7)), canonical(diff::run_campaign(cfg)));
  // The same over a checkpoint directory: empty-range shards must still
  // write their (trivially complete) result files or the merge cannot
  // account for them.
  TempDir dir("gpudiff_empty_range_shards");
  for (int i = 0; i < 7; ++i) {
    ShardRunOptions options;
    options.shard = {i, 7};
    options.checkpoint_dir = dir.str();
    campaign::run_shard(cfg, options);
  }
  EXPECT_EQ(canonical(campaign::merge_checkpoint_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));
}

// ---------------------------------------------------------------------------
// record-cap semantics under sharding
// ---------------------------------------------------------------------------

TEST(RecordCap, AppliedDeterministicallyAtMergeTime) {
  auto cfg = small_config();
  const auto uncapped = diff::run_campaign(cfg);
  ASSERT_GT(uncapped.records.size(), 6u) << "config produces too few records";

  cfg.max_records = 6;
  const auto direct = diff::run_campaign(cfg);
  ASSERT_EQ(direct.records.size(), 6u);
  // The capped set is the lowest (program, input, level) records: the
  // uncapped run's canonical prefix.
  for (std::size_t i = 0; i < direct.records.size(); ++i) {
    EXPECT_EQ(direct.records[i].program_index, uncapped.records[i].program_index);
    EXPECT_EQ(direct.records[i].input_index, uncapped.records[i].input_index);
    EXPECT_EQ(direct.records[i].level, uncapped.records[i].level);
  }
  // And sharding does not change it, whichever shard the records fall into.
  for (int count : {2, 3, 7})
    EXPECT_EQ(canonical(run_sharded(cfg, count)), canonical(direct)) << count;
}

TEST(RecordCap, CanonicalOrderIsProgramInputLevel) {
  const auto results = diff::run_campaign(small_config());
  const auto& levels = results.levels;
  const auto pos = [&](opt::OptLevel l) {
    for (std::size_t i = 0; i < levels.size(); ++i)
      if (levels[i] == l) return i;
    ADD_FAILURE() << "record level not in campaign";
    return std::size_t{0};
  };
  for (std::size_t i = 1; i < results.records.size(); ++i) {
    const auto& a = results.records[i - 1];
    const auto& b = results.records[i];
    const auto ka = std::tuple(a.program_index, a.input_index, pos(a.level));
    const auto kb = std::tuple(b.program_index, b.input_index, pos(b.level));
    EXPECT_LT(ka, kb) << "record " << i << " out of canonical order";
  }
}

// ---------------------------------------------------------------------------
// checkpointing and resume
// ---------------------------------------------------------------------------

TEST(Checkpoint, KillAndResumeIsByteIdenticalToUninterrupted) {
  const auto cfg = small_config();
  const std::string direct = canonical(diff::run_campaign(cfg));
  TempDir dir("gpudiff_ckpt_resume");

  // First run: stop after three 4-program blocks, as a SIGTERM would.
  int blocks = 0;
  ShardRunOptions options;
  options.shard = {0, 1};
  options.checkpoint_dir = dir.str();
  options.checkpoint_every = 4;
  options.on_progress = [&](const ShardProgress&) { ++blocks; };
  options.stop_requested = [&] { return blocks >= 3; };
  const ShardProgress killed = campaign::run_shard(cfg, options);
  EXPECT_FALSE(killed.complete());
  EXPECT_EQ(killed.cursor, 12u);
  ASSERT_TRUE(std::filesystem::exists(
      campaign::checkpoint_path(dir.str(), options.shard)));

  // Second run: resume from the checkpoint and finish.
  ShardRunOptions resume;
  resume.shard = options.shard;
  resume.checkpoint_dir = dir.str();
  resume.checkpoint_every = 4;
  resume.resume = true;
  std::uint64_t first_resumed_block = 0;
  resume.on_progress = [&](const ShardProgress& p) {
    if (first_resumed_block == 0) first_resumed_block = p.cursor;
  };
  const ShardProgress finished = campaign::run_shard(cfg, resume);
  EXPECT_TRUE(finished.complete());
  // The resumed run picked up after the kill point instead of redoing work.
  EXPECT_EQ(first_resumed_block, 16u);
  EXPECT_EQ(canonical(campaign::merge_shards({finished})), direct);
}

TEST(Checkpoint, ResumeWithoutCheckpointStartsFresh) {
  const auto cfg = small_config(10);
  TempDir dir("gpudiff_ckpt_cold");
  ShardRunOptions options;
  options.shard = {0, 1};
  options.checkpoint_dir = dir.str();
  options.resume = true;
  const ShardProgress progress = campaign::run_shard(cfg, options);
  EXPECT_TRUE(progress.complete());
  EXPECT_EQ(canonical(campaign::merge_shards({progress})),
            canonical(diff::run_campaign(cfg)));
}

TEST(Checkpoint, NonResumeRefusesToOverwriteExistingCheckpoint) {
  // A scheduler restarting the same command line without resume must not
  // silently restart the shard from program 0 over checkpointed work.
  const auto cfg = small_config(10);
  TempDir dir("gpudiff_ckpt_overwrite");
  ShardRunOptions options;
  options.shard = {0, 1};
  options.checkpoint_dir = dir.str();
  campaign::run_shard(cfg, options);
  EXPECT_THROW(campaign::run_shard(cfg, options), std::runtime_error);
  options.resume = true;
  EXPECT_NO_THROW(campaign::run_shard(cfg, options));
}

TEST(Checkpoint, RejectsForeignAndVersionedDocuments) {
  using support::Json;
  EXPECT_THROW(campaign::progress_from_json(Json::parse("{}")),
               std::runtime_error);
  EXPECT_THROW(campaign::progress_from_json(Json::parse(R"({"format":"x"})")),
               std::runtime_error);
  EXPECT_THROW(campaign::progress_from_json(Json::parse(
                   R"({"format":"gpudiff-shard","version":2})")),
               std::runtime_error);
  EXPECT_THROW(campaign::progress_from_json(Json::parse(
                   R"({"format":"gpudiff-shard"})")),
               std::runtime_error);
  EXPECT_THROW(campaign::results_from_json(Json::parse(
                   R"({"format":"gpudiff-shard","version":1})")),
               std::runtime_error);
}

TEST(Checkpoint, ResumeRejectsMismatchedConfig) {
  auto cfg = small_config(10);
  TempDir dir("gpudiff_ckpt_mismatch");
  ShardRunOptions options;
  options.shard = {0, 1};
  options.checkpoint_dir = dir.str();
  campaign::run_shard(cfg, options);

  options.resume = true;
  cfg.seed = 99;
  EXPECT_THROW(campaign::run_shard(cfg, options), std::runtime_error);
}

TEST(Checkpoint, ProgressJsonRoundTrips) {
  const auto cfg = small_config(12);
  ShardRunOptions options;
  options.shard = {1, 3};
  const ShardProgress progress = campaign::run_shard(cfg, options);
  const support::Json j = campaign::progress_to_json(progress);
  const ShardProgress reloaded =
      campaign::progress_from_json(support::Json::parse(j.dump()));
  EXPECT_EQ(campaign::progress_to_json(reloaded).dump(), j.dump());
  EXPECT_EQ(reloaded.cursor, progress.cursor);
  EXPECT_EQ(reloaded.records.size(), progress.records.size());
}

TEST(Checkpoint, ResultsJsonRoundTrips) {
  const auto results = diff::run_campaign(small_config(20));
  const support::Json j = campaign::results_to_json(results);
  const auto reloaded =
      campaign::results_from_json(support::Json::parse(j.dump(1)));
  EXPECT_EQ(campaign::results_to_json(reloaded).dump(1), j.dump(1));
  EXPECT_EQ(reloaded.discrepancies_total(), results.discrepancies_total());
}

TEST(Checkpoint, AtomicWriteLeavesNoTempFile) {
  TempDir dir("gpudiff_atomic_write");
  std::filesystem::create_directories(dir.path);
  const std::string path = (dir.path / "out.json").string();
  support::write_file_atomic(path, "{\"x\": 1}\n");
  EXPECT_EQ(support::read_file(path), "{\"x\": 1}\n");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

// ---------------------------------------------------------------------------
// merge validation
// ---------------------------------------------------------------------------

TEST(Merge, RejectsIncompleteAndMissingShards) {
  const auto cfg = small_config(20);
  ShardRunOptions options;
  options.shard = {0, 2};
  int blocks = 0;
  options.checkpoint_every = 2;
  options.on_progress = [&](const ShardProgress&) { ++blocks; };
  options.stop_requested = [&] { return blocks >= 1; };
  ShardProgress half = campaign::run_shard(cfg, options);
  EXPECT_FALSE(half.complete());

  ShardRunOptions full0;
  full0.shard = {0, 2};
  ShardRunOptions full1;
  full1.shard = {1, 2};
  const ShardProgress shard0 = campaign::run_shard(cfg, full0);
  const ShardProgress shard1 = campaign::run_shard(cfg, full1);

  EXPECT_THROW(campaign::merge_shards({shard0, half}), std::runtime_error);
  EXPECT_THROW(campaign::merge_shards({shard0}), std::runtime_error);
  EXPECT_THROW(campaign::merge_shards({shard0, shard0}), std::runtime_error);
  EXPECT_THROW(campaign::merge_shards({}), std::runtime_error);
  EXPECT_NO_THROW(campaign::merge_shards({shard1, shard0}));  // order-insensitive
}

TEST(Merge, RejectsMixedConfigurations) {
  auto cfg = small_config(10);
  ShardRunOptions s0;
  s0.shard = {0, 2};
  ShardRunOptions s1;
  s1.shard = {1, 2};
  const ShardProgress shard0 = campaign::run_shard(cfg, s0);
  cfg.seed = 4321;
  const ShardProgress shard1 = campaign::run_shard(cfg, s1);
  EXPECT_THROW(campaign::merge_shards({shard0, shard1}), std::runtime_error);
}

TEST(Merge, LoadsShardsFromCheckpointDirectory) {
  const auto cfg = small_config(21);
  TempDir dir("gpudiff_merge_dir");
  for (int i = 0; i < 3; ++i) {
    ShardRunOptions options;
    options.shard = {i, 3};
    options.checkpoint_dir = dir.str();
    options.checkpoint_every = 2;
    campaign::run_shard(cfg, options);
  }
  EXPECT_EQ(canonical(campaign::merge_checkpoint_dir(dir.str())),
            canonical(diff::run_campaign(cfg)));
}

// ---------------------------------------------------------------------------
// platform registry: golden byte-identity + N-way campaigns
// ---------------------------------------------------------------------------

// The platform-registry acceptance criterion: the default nvcc,hipcc
// selection must produce a canonical report byte-identical to the
// pre-refactor output.  tests/golden/*.json were generated by the
// two-slot-era binary (commit f1b9a23) from the exact configs below.
TEST(PlatformGolden, DefaultCampaignMatchesPreRegistryReport) {
  diff::CampaignConfig cfg;
  cfg.num_programs = 60;
  cfg.inputs_per_program = 5;
  cfg.seed = 1234;
  const std::string got =
      campaign::results_to_json(diff::run_campaign(cfg)).dump(1) + "\n";
  EXPECT_EQ(got, support::read_file(std::string(GPUDIFF_SOURCE_DIR) +
                                    "/tests/golden/campaign_p60_i5_s1234_fp64.json"));

  diff::CampaignConfig cfg32;
  cfg32.gen.precision = ir::Precision::FP32;
  cfg32.num_programs = 40;
  cfg32.inputs_per_program = 4;
  cfg32.seed = 77;
  const std::string got32 =
      campaign::results_to_json(diff::run_campaign(cfg32)).dump(1) + "\n";
  EXPECT_EQ(got32, support::read_file(std::string(GPUDIFF_SOURCE_DIR) +
                                      "/tests/golden/campaign_p40_i4_s77_fp32.json"));
}

diff::CampaignConfig three_platform_config(int programs = 30) {
  diff::CampaignConfig cfg = small_config(programs);
  cfg.platforms = opt::parse_platform_list("nvcc,hipcc,hipcc-ftz");
  return cfg;
}

TEST(PlatformCampaign, ThreeWayCheckpointResumeMergeIsByteIdentical) {
  // An N=3 campaign through the full orchestration stack: sharded
  // execution, a kill after three blocks, resume, then merge — byte
  // identical to the direct three-platform run.
  const auto cfg = three_platform_config();
  const diff::CampaignResults direct = diff::run_campaign(cfg);
  EXPECT_EQ(direct.platforms,
            (std::vector<std::string>{"nvcc", "hipcc", "hipcc-ftz"}));
  EXPECT_EQ(direct.runs_total(), direct.comparisons_total() * 3);
  const std::string want = canonical(direct);

  TempDir dir("gpudiff_n3_resume");
  int blocks = 0;
  ShardRunOptions options;
  options.shard = {0, 2};
  options.checkpoint_dir = dir.str();
  options.checkpoint_every = 4;
  options.on_progress = [&](const ShardProgress&) { ++blocks; };
  options.stop_requested = [&] { return blocks >= 3; };
  const ShardProgress killed = campaign::run_shard(cfg, options);
  EXPECT_FALSE(killed.complete());

  ShardRunOptions resume = options;
  resume.resume = true;
  resume.on_progress = nullptr;
  resume.stop_requested = nullptr;
  const ShardProgress shard0 = campaign::run_shard(cfg, resume);
  EXPECT_TRUE(shard0.complete());
  ShardRunOptions s1;
  s1.shard = {1, 2};
  s1.checkpoint_dir = dir.str();
  campaign::run_shard(cfg, s1);
  EXPECT_EQ(canonical(campaign::merge_checkpoint_dir(dir.str())), want);
}

TEST(PlatformCampaign, ThreeWayWorkerFleetIsByteIdentical) {
  // The same N=3 campaign through the work-stealing scheduler.
  const auto cfg = three_platform_config();
  const std::string want = canonical(diff::run_campaign(cfg));
  TempDir dir("gpudiff_n3_fleet");
  for (const char* id : {"w0", "w1"}) {
    campaign::WorkerOptions wopts;
    wopts.dir = dir.str();
    wopts.lease_size = 4;
    wopts.worker_id = id;
    const auto outcome = campaign::run_worker(cfg, wopts);
    EXPECT_TRUE(outcome.campaign_complete);
  }
  EXPECT_EQ(canonical(campaign::merge_lease_dir(dir.str())), want);
}

TEST(PlatformCampaign, FingerprintCoversThePlatformSet) {
  // Same seed/counts, different platform selection: resume and merge must
  // both refuse to mix the two, because a block is only a pure function of
  // (fingerprint, range) when the fingerprint pins the platform set.
  const auto cfg2 = small_config(10);
  const auto cfg3 = [&] {
    auto c = three_platform_config(10);
    c.num_programs = 10;
    return c;
  }();
  EXPECT_NE(campaign::config_to_json(cfg2), campaign::config_to_json(cfg3));

  TempDir dir("gpudiff_platform_fingerprint");
  ShardRunOptions options;
  options.shard = {0, 1};
  options.checkpoint_dir = dir.str();
  campaign::run_shard(cfg2, options);
  options.resume = true;
  EXPECT_THROW(campaign::run_shard(cfg3, options), std::runtime_error);
}

TEST(PlatformCampaign, ThreeWayResultsJsonRoundTrips) {
  auto cfg = three_platform_config(15);
  const auto results = diff::run_campaign(cfg);
  const support::Json j = campaign::results_to_json(results);
  // The general layout names its platforms; every record carries one
  // payload per platform and a per-platform class array.
  ASSERT_TRUE(j.contains("platforms"));
  const auto reloaded =
      campaign::results_from_json(support::Json::parse(j.dump(1)));
  EXPECT_EQ(campaign::results_to_json(reloaded).dump(1), j.dump(1));
  EXPECT_EQ(reloaded.platforms, results.platforms);
  for (const auto& rec : reloaded.records) {
    EXPECT_EQ(rec.printed.size(), 3u);
    EXPECT_EQ(rec.pair_cls.size(), 3u);
    EXPECT_EQ(rec.pair_cls[0], diff::DiscrepancyClass::None);
  }
}

// ---------------------------------------------------------------------------
// VM regression: lazy array materialization must not leak state across a
// batch (a store in run i, then a store-free run i+1 over the same slot).
// ---------------------------------------------------------------------------

TEST(LazyArrays, NoCrossInputContaminationInBatch) {
  // if (gate > 0) arr[0] = 99; comp += arr[0];
  ir::ProgramBuilder b(ir::Precision::FP64);
  ir::Arena& A = b.arena();
  const int arr = b.add_array_param();
  const int gate = b.add_scalar_param();
  b.begin_if(ir::make_cmp(A, ir::CmpOp::Gt, ir::make_param(A, gate),
                          ir::make_literal(A, 0.0)));
  b.store_array(arr, ir::make_literal(A, 0.0), ir::make_literal(A, 99.0));
  b.end_block();
  b.assign_comp(ir::AssignOp::Add, ir::make_array(A, arr, ir::make_literal(A, 0.0)));
  const ir::Program p = b.build();
  const auto exe =
      opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O0, false});

  // Input 0 stores (comp = 99), input 1 must observe its own broadcast (7),
  // not the previous run's store; input 2 stores again.
  std::vector<vgpu::KernelArgs> inputs(3);
  inputs[0].fp = {0.0, 5.0, 1.0};
  inputs[1].fp = {0.0, 7.0, -1.0};
  inputs[2].fp = {0.0, 3.0, 2.0};
  for (auto& args : inputs) args.ints = {0, 0, 0};

  std::vector<vgpu::RunResult> out(inputs.size());
  vgpu::ExecContext ctx;
  exe.bytecode().run_batch(inputs, ctx, out.data());
  EXPECT_EQ(out[0].value, 99.0);
  EXPECT_EQ(out[1].value, 7.0);
  EXPECT_EQ(out[2].value, 99.0);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(out[i].value_bits, vgpu::run_kernel_tree(exe, inputs[i]).value_bits)
        << "input " << i;
}

}  // namespace
