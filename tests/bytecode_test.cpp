// Differential self-test for the bytecode VM: the register VM must be
// bit-identical to the tree-walk reference oracle — value bits, exception
// flags, op count and cycle count — for every generated program, at every
// optimization level, for both toolchains, both precisions and both
// HIPIFY modes.  Also pins the VM-specific lowering details (read-only
// array elision, short-circuit accounting, subscript clamping) and proves
// fixed-seed campaign output is backend-independent.

#include <gtest/gtest.h>

#include <stdexcept>

#include "diff/campaign.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "ir/builder.hpp"
#include "opt/pipeline.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::ir;

void expect_identical(const vgpu::RunResult& vm, const vgpu::RunResult& tree,
                      const std::string& context) {
  EXPECT_EQ(vm.value_bits, tree.value_bits) << context;
  EXPECT_EQ(vm.flags.raw(), tree.flags.raw()) << context;
  EXPECT_EQ(vm.op_count, tree.op_count) << context;
  EXPECT_EQ(vm.cycle_count, tree.cycle_count) << context;
  EXPECT_EQ(vm.printed(), tree.printed()) << context;
}

struct DifferentialCase {
  Precision precision;
  bool hipify;
};

class BytecodeDifferential : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(BytecodeDifferential, MatchesTreeWalkOracle) {
  const auto [precision, hipify] = GetParam();
  gen::GenConfig cfg;
  cfg.precision = precision;
  const gen::Generator generator(cfg, 20240901);
  const gen::InputGenerator input_gen(20240901);

  vgpu::ExecContext ctx;
  for (std::uint64_t pi = 0; pi < 200; ++pi) {
    const Program program = generator.generate(pi);
    for (std::uint64_t ii = 0; ii < 2; ++ii) {
      const vgpu::KernelArgs args = input_gen.generate(program, pi, ii);
      for (const opt::OptLevel level : opt::kAllOptLevels) {
        for (const opt::Toolchain tc : {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
          const opt::Executable exe =
              opt::compile(program, {tc, level, hipify && tc == opt::Toolchain::Hipcc});
          const vgpu::RunResult vm = exe.bytecode().run(args, ctx);
          const vgpu::RunResult tree = vgpu::run_kernel_tree(exe, args);
          expect_identical(vm, tree,
                           "program " + std::to_string(pi) + " input " +
                               std::to_string(ii) + " " + exe.description());
          if (HasFailure()) return;  // one diverging program is enough signal
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BytecodeDifferential,
    ::testing::Values(DifferentialCase{Precision::FP64, false},
                      DifferentialCase{Precision::FP64, true},
                      DifferentialCase{Precision::FP32, false},
                      DifferentialCase{Precision::FP32, true}),
    [](const auto& info) {
      return std::string(info.param.precision == Precision::FP32 ? "FP32" : "FP64") +
             (info.param.hipify ? "Hipify" : "Native");
    });

// ---------------------------------------------------------------------------
// Campaign-level equivalence: the fixed-seed campaign tables must not
// depend on the execution backend.
// ---------------------------------------------------------------------------

TEST(BytecodeCampaign, FixedSeedCampaignIdenticalAcrossBackends) {
  diff::CampaignConfig cfg;
  cfg.num_programs = 40;
  cfg.inputs_per_program = 3;
  cfg.threads = 2;

  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  const diff::CampaignResults vm = diff::run_campaign(cfg);
  vgpu::set_exec_backend(vgpu::ExecBackend::TreeWalk);
  const diff::CampaignResults tree = diff::run_campaign(cfg);
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);

  ASSERT_EQ(vm.per_level.size(), tree.per_level.size());
  for (std::size_t li = 0; li < vm.per_level.size(); ++li) {
    EXPECT_EQ(vm.per_level[li].comparisons, tree.per_level[li].comparisons);
    EXPECT_EQ(vm.per_level[li].pairs, tree.per_level[li].pairs);
  }
  ASSERT_EQ(vm.records.size(), tree.records.size());
  for (std::size_t i = 0; i < vm.records.size(); ++i) {
    EXPECT_EQ(vm.records[i].program_index, tree.records[i].program_index);
    EXPECT_EQ(vm.records[i].input_index, tree.records[i].input_index);
    EXPECT_EQ(vm.records[i].level, tree.records[i].level);
    EXPECT_EQ(vm.records[i].cls, tree.records[i].cls);
    EXPECT_EQ(vm.records[i].printed, tree.records[i].printed);
  }
}

// ---------------------------------------------------------------------------
// Lowering details.
// ---------------------------------------------------------------------------

opt::Executable compile_o0(Program p) {
  return opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O0, false});
}

TEST(Bytecode, ShortCircuitSkipsUncountedOperand) {
  // (0 != 0) && (comp < comp + 1): the RHS Cmp and Add must not execute
  // when the LHS is false — op_count sees exactly one comparison.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  auto cond = make_bool(A, 
      BoolOp::And, make_cmp(A, CmpOp::Ne, make_literal(A, 0.0), make_literal(A, 0.0)),
      make_cmp(A, CmpOp::Lt, make_param(A, 0),
               make_bin(A, BinOp::Add, make_param(A, 0), make_literal(A, 1.0))));
  b.begin_if(std::move(cond));
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  b.end_block();
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {2.0};
  args.ints = {0};
  const auto vm = vgpu::run_kernel(exe, args);
  const auto tree = vgpu::run_kernel_tree(exe, args);
  EXPECT_EQ(vm.op_count, 1u);
  EXPECT_EQ(vm.op_count, tree.op_count);
  EXPECT_EQ(vm.cycle_count, tree.cycle_count);
}

TEST(Bytecode, ReadOnlyArrayLoadsBroadcastValue) {
  // comp = arr[3]; the array is never stored to, so the VM elides its
  // backing storage entirely — loads must still see the broadcast argument.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int arr = b.add_array_param();
  b.assign_comp(AssignOp::Set, make_array(A, arr, make_literal(A, 3.0)));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {0.0, 6.5};
  args.ints = {0, 0};
  EXPECT_EQ(vgpu::run_kernel(exe, args).value, 6.5);
  EXPECT_EQ(vgpu::run_kernel_tree(exe, args).value, 6.5);
}

TEST(Bytecode, StoredArrayRoundTrips) {
  // arr[2] = 41; comp = arr[2] + arr[1]  (arr broadcast-initialized to 1).
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int arr = b.add_array_param();
  b.store_array(arr, make_literal(A, 2.0), make_literal(A, 41.0));
  b.assign_comp(AssignOp::Set,
                make_bin(A, BinOp::Add, make_array(A, arr, make_literal(A, 2.0)),
                         make_array(A, arr, make_literal(A, 1.0))));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {0.0, 1.0};
  args.ints = {0, 0};
  EXPECT_EQ(vgpu::run_kernel(exe, args).value, 42.0);
  EXPECT_EQ(vgpu::run_kernel_tree(exe, args).value, 42.0);
}

TEST(Bytecode, NanSubscriptIndexesElementZero) {
  // arr[0] = 9; comp = arr[0.0/0.0]: a NaN subscript must clamp to element
  // 0 in both backends (previously UB in the tree-walk interpreter).
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int arr = b.add_array_param();
  b.store_array(arr, make_literal(A, 0.0), make_literal(A, 9.0));
  b.assign_comp(
      AssignOp::Set,
      make_array(A, arr, make_bin(A, BinOp::Div, make_literal(A, 0.0), make_literal(A, 0.0))));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {0.0, 1.0};
  args.ints = {0, 0};
  const auto vm = vgpu::run_kernel(exe, args);
  const auto tree = vgpu::run_kernel_tree(exe, args);
  EXPECT_EQ(vm.value, 9.0);
  expect_identical(vm, tree, "NaN subscript");
}

TEST(Bytecode, LoopVarAfterLoopMatchesOracle) {
  // `for (i < n) comp += 1; comp = i`: after the loop both backends must
  // observe the final iteration value (n-1), and a zero-trip loop must
  // leave the variable untouched (0 at run start).
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  b.begin_for(n);
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  b.end_block();
  b.assign_comp(AssignOp::Set, make_loop_var(A, 0));
  const opt::Executable exe = compile_o0(b.build());
  for (const int bound : {3, 1, 0}) {
    vgpu::KernelArgs args;
    args.fp = {0.0, 0.0};
    args.ints = {0, bound};
    const auto vm = vgpu::run_kernel(exe, args);
    const auto tree = vgpu::run_kernel_tree(exe, args);
    EXPECT_EQ(vm.value_bits, tree.value_bits) << "bound " << bound;
    EXPECT_EQ(vm.value, bound > 0 ? bound - 1 : 0) << "bound " << bound;
  }
}

TEST(Bytecode, HugeLiteralSubscriptMatchesOracle) {
  // A literal subscript beyond long long range saturates identically in
  // both backends (previously UB in the tree-walk Literal fast path).
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int arr = b.add_array_param();
  b.store_array(arr, make_literal(A, 255.0), make_literal(A, 7.0));
  b.assign_comp(AssignOp::Set, make_array(A, arr, make_literal(A, 1e30)));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {0.0, 1.0};
  args.ints = {0, 0};
  const auto vm = vgpu::run_kernel(exe, args);
  const auto tree = vgpu::run_kernel_tree(exe, args);
  EXPECT_EQ(vm.value, 7.0);
  EXPECT_EQ(vm.value_bits, tree.value_bits);
}

TEST(Bytecode, MalformedStatementFaultsOnlyWhenReached) {
  // A store to a non-array (scalar) parameter is structurally malformed,
  // but guarded by `if (0 != 0)` it never executes: like the tree-walk
  // oracle, the VM must run the program cleanly, and must throw the same
  // error once the guard lets the statement execute.
  const auto build = [](double guard_rhs) {
    // Raw IR assembly: ProgramBuilder (rightly) refuses to emit this.
    Arena A;
    std::vector<Param> params{{ParamKind::Comp, "comp"},
                              {ParamKind::Scalar, "var_1"}};
    std::vector<StmtId> guarded;
    guarded.push_back(
        make_store_array(A, 1, make_literal(A, 0.0), make_literal(A, 1.0)));
    std::vector<StmtId> body;
    body.push_back(make_if(
        A, make_cmp(A, CmpOp::Ne, make_literal(A, 0.0), make_literal(A, guard_rhs)),
        guarded));
    body.push_back(make_assign_comp(A, AssignOp::Add, make_literal(A, 2.0)));
    return compile_o0(Program(Precision::FP64, std::move(params), std::move(A),
                              std::move(body)));
  };
  vgpu::KernelArgs args;
  args.fp = {1.0, 3.0};
  args.ints = {0, 0};
  const opt::Executable unreachable = build(0.0);
  EXPECT_EQ(vgpu::run_kernel(unreachable, args).value, 3.0);
  EXPECT_EQ(vgpu::run_kernel_tree(unreachable, args).value, 3.0);
  const opt::Executable reachable = build(1.0);
  EXPECT_THROW((void)vgpu::run_kernel(reachable, args), std::runtime_error);
  EXPECT_THROW((void)vgpu::run_kernel_tree(reachable, args), std::runtime_error);
}

TEST(Bytecode, ArgumentCountMismatchThrows) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs bad;
  bad.fp = {1.0, 2.0};
  bad.ints = {0, 0};
  EXPECT_THROW((void)vgpu::run_kernel(exe, bad), std::runtime_error);
}

TEST(Bytecode, BatchedSweepBitIdenticalToPerRunLoop) {
  // compare_batch must be indistinguishable from the compare_run loop it
  // replaced in the campaign driver: same bits, flags, op counts and
  // classification, for both backends.
  gen::GenConfig cfg;
  const gen::Generator generator(cfg, 77);
  const gen::InputGenerator input_gen(77);
  for (std::uint64_t pi = 0; pi < 25; ++pi) {
    const Program program = generator.generate(pi);
    std::vector<vgpu::KernelArgs> inputs;
    for (int ii = 0; ii < 6; ++ii) inputs.push_back(input_gen.generate(program, pi, ii));
    for (const opt::OptLevel level : opt::kAllOptLevels) {
      const diff::CompiledSet set = diff::compile_pair(program, level);
      for (const auto backend :
           {vgpu::ExecBackend::Bytecode, vgpu::ExecBackend::TreeWalk}) {
        vgpu::set_exec_backend(backend);
        const auto batch = diff::compare_batch(set, inputs);
        ASSERT_EQ(batch.size(), inputs.size());
        for (std::size_t ii = 0; ii < inputs.size(); ++ii) {
          const auto single = diff::compare_run(set, inputs[ii]);
          EXPECT_EQ(batch[ii].platforms[0].bits, single.platforms[0].bits);
          EXPECT_EQ(batch[ii].platforms[1].bits, single.platforms[1].bits);
          EXPECT_EQ(batch[ii].platforms[0].flags.raw(),
                    single.platforms[0].flags.raw());
          EXPECT_EQ(batch[ii].platforms[1].op_count,
                    single.platforms[1].op_count);
          EXPECT_EQ(batch[ii].cls, single.cls);
        }
      }
      vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
    }
  }
}

TEST(Bytecode, BatchRejectsMismatchedArguments) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs good;
  good.fp = {1.0};
  good.ints = {0};
  vgpu::KernelArgs bad;
  bad.fp = {1.0, 2.0};
  bad.ints = {0, 0};
  const vgpu::KernelArgs inputs[] = {good, bad};
  vgpu::RunResult out[2];
  vgpu::ExecContext ctx;
  EXPECT_THROW(exe.bytecode().run_batch(inputs, ctx, out), std::runtime_error);
}

TEST(Bytecode, CompiledProgramIsCachedOnExecutable) {
  gen::GenConfig cfg;
  const gen::Generator generator(cfg, 7);
  const opt::Executable exe = opt::compile(
      generator.generate(0), {opt::Toolchain::Nvcc, opt::OptLevel::O2, false});
  ASSERT_NE(exe.bytecode_cache, nullptr);  // built eagerly by compile()
  const vgpu::BytecodeProgram* first = &exe.bytecode();
  EXPECT_EQ(first, &exe.bytecode());  // stable across calls
  const opt::Executable copy = exe;   // copies share the lowering
  EXPECT_EQ(copy.bytecode_cache.get(), exe.bytecode_cache.get());
}

}  // namespace
