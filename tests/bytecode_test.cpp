// Differential self-test for the bytecode VM: the register VM must be
// bit-identical to the tree-walk reference oracle — value bits, exception
// flags, op count and cycle count — for every generated program, at every
// optimization level, for both toolchains, both precisions and both
// HIPIFY modes.  Also pins the VM-specific lowering details (read-only
// array elision, short-circuit accounting, subscript clamping) and proves
// fixed-seed campaign output is backend-independent.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

#include "diff/campaign.hpp"
#include "diff/runner.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "ir/builder.hpp"
#include "opt/pipeline.hpp"
#include "support/cpu.hpp"
#include "vgpu/bytecode.hpp"
#include "vgpu/interp.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::ir;

/// Every lane engine this binary can actually run (Avx2 is present only
/// when compiled in and the host supports it; probing through
/// simd_engine() also exercises its fail-fast throw).
std::vector<support::SimdOverride> runnable_engines() {
  std::vector<support::SimdOverride> v{support::SimdOverride::Off,
                                       support::SimdOverride::Scalar1,
                                       support::SimdOverride::Scalar};
  const support::SimdOverride saved = support::simd_override();
  support::set_simd_override(support::SimdOverride::Avx2);
  try {
    (void)vgpu::simd_engine();
    v.push_back(support::SimdOverride::Avx2);
  } catch (const std::runtime_error&) {
    // Not compiled in or not usable on this host: the Avx2 leg is covered
    // on CI's AVX2 runner instead.
  }
  support::set_simd_override(saved);
  return v;
}

/// RAII engine override so a failing test cannot leak its engine choice
/// into later tests.
struct ScopedEngine {
  explicit ScopedEngine(support::SimdOverride mode)
      : saved(support::simd_override()) {
    support::set_simd_override(mode);
  }
  ~ScopedEngine() { support::set_simd_override(saved); }
  const support::SimdOverride saved;
};

void expect_identical(const vgpu::RunResult& vm, const vgpu::RunResult& tree,
                      const std::string& context) {
  EXPECT_EQ(vm.value_bits, tree.value_bits) << context;
  EXPECT_EQ(vm.flags.raw(), tree.flags.raw()) << context;
  EXPECT_EQ(vm.op_count, tree.op_count) << context;
  EXPECT_EQ(vm.cycle_count, tree.cycle_count) << context;
  EXPECT_EQ(vm.printed(), tree.printed()) << context;
}

struct DifferentialCase {
  Precision precision;
  bool hipify;
};

class BytecodeDifferential : public ::testing::TestWithParam<DifferentialCase> {};

TEST_P(BytecodeDifferential, MatchesTreeWalkOracle) {
  const auto [precision, hipify] = GetParam();
  gen::GenConfig cfg;
  cfg.precision = precision;
  const gen::Generator generator(cfg, 20240901);
  const gen::InputGenerator input_gen(20240901);

  vgpu::ExecContext ctx;
  for (std::uint64_t pi = 0; pi < 200; ++pi) {
    const Program program = generator.generate(pi);
    for (std::uint64_t ii = 0; ii < 2; ++ii) {
      const vgpu::KernelArgs args = input_gen.generate(program, pi, ii);
      for (const opt::OptLevel level : opt::kAllOptLevels) {
        for (const opt::Toolchain tc : {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
          const opt::Executable exe =
              opt::compile(program, {tc, level, hipify && tc == opt::Toolchain::Hipcc});
          const vgpu::RunResult vm = exe.bytecode().run(args, ctx);
          const vgpu::RunResult tree = vgpu::run_kernel_tree(exe, args);
          expect_identical(vm, tree,
                           "program " + std::to_string(pi) + " input " +
                               std::to_string(ii) + " " + exe.description());
          if (HasFailure()) return;  // one diverging program is enough signal
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, BytecodeDifferential,
    ::testing::Values(DifferentialCase{Precision::FP64, false},
                      DifferentialCase{Precision::FP64, true},
                      DifferentialCase{Precision::FP32, false},
                      DifferentialCase{Precision::FP32, true}),
    [](const auto& info) {
      return std::string(info.param.precision == Precision::FP32 ? "FP32" : "FP64") +
             (info.param.hipify ? "Hipify" : "Native");
    });

// ---------------------------------------------------------------------------
// Campaign-level equivalence: the fixed-seed campaign tables must not
// depend on the execution backend.
// ---------------------------------------------------------------------------

TEST(BytecodeCampaign, FixedSeedCampaignIdenticalAcrossBackends) {
  diff::CampaignConfig cfg;
  cfg.num_programs = 40;
  cfg.inputs_per_program = 3;
  cfg.threads = 2;

  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
  const diff::CampaignResults vm = diff::run_campaign(cfg);
  vgpu::set_exec_backend(vgpu::ExecBackend::TreeWalk);
  const diff::CampaignResults tree = diff::run_campaign(cfg);
  vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);

  ASSERT_EQ(vm.per_level.size(), tree.per_level.size());
  for (std::size_t li = 0; li < vm.per_level.size(); ++li) {
    EXPECT_EQ(vm.per_level[li].comparisons, tree.per_level[li].comparisons);
    EXPECT_EQ(vm.per_level[li].pairs, tree.per_level[li].pairs);
  }
  ASSERT_EQ(vm.records.size(), tree.records.size());
  for (std::size_t i = 0; i < vm.records.size(); ++i) {
    EXPECT_EQ(vm.records[i].program_index, tree.records[i].program_index);
    EXPECT_EQ(vm.records[i].input_index, tree.records[i].input_index);
    EXPECT_EQ(vm.records[i].level, tree.records[i].level);
    EXPECT_EQ(vm.records[i].cls, tree.records[i].cls);
    EXPECT_EQ(vm.records[i].printed, tree.records[i].printed);
  }
}

// ---------------------------------------------------------------------------
// Lowering details.
// ---------------------------------------------------------------------------

opt::Executable compile_o0(Program p) {
  return opt::compile(p, {opt::Toolchain::Nvcc, opt::OptLevel::O0, false});
}

TEST(Bytecode, ShortCircuitSkipsUncountedOperand) {
  // (0 != 0) && (comp < comp + 1): the RHS Cmp and Add must not execute
  // when the LHS is false — op_count sees exactly one comparison.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  auto cond = make_bool(A, 
      BoolOp::And, make_cmp(A, CmpOp::Ne, make_literal(A, 0.0), make_literal(A, 0.0)),
      make_cmp(A, CmpOp::Lt, make_param(A, 0),
               make_bin(A, BinOp::Add, make_param(A, 0), make_literal(A, 1.0))));
  b.begin_if(std::move(cond));
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  b.end_block();
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {2.0};
  args.ints = {0};
  const auto vm = vgpu::run_kernel(exe, args);
  const auto tree = vgpu::run_kernel_tree(exe, args);
  EXPECT_EQ(vm.op_count, 1u);
  EXPECT_EQ(vm.op_count, tree.op_count);
  EXPECT_EQ(vm.cycle_count, tree.cycle_count);
}

TEST(Bytecode, ReadOnlyArrayLoadsBroadcastValue) {
  // comp = arr[3]; the array is never stored to, so the VM elides its
  // backing storage entirely — loads must still see the broadcast argument.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int arr = b.add_array_param();
  b.assign_comp(AssignOp::Set, make_array(A, arr, make_literal(A, 3.0)));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {0.0, 6.5};
  args.ints = {0, 0};
  EXPECT_EQ(vgpu::run_kernel(exe, args).value, 6.5);
  EXPECT_EQ(vgpu::run_kernel_tree(exe, args).value, 6.5);
}

TEST(Bytecode, StoredArrayRoundTrips) {
  // arr[2] = 41; comp = arr[2] + arr[1]  (arr broadcast-initialized to 1).
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int arr = b.add_array_param();
  b.store_array(arr, make_literal(A, 2.0), make_literal(A, 41.0));
  b.assign_comp(AssignOp::Set,
                make_bin(A, BinOp::Add, make_array(A, arr, make_literal(A, 2.0)),
                         make_array(A, arr, make_literal(A, 1.0))));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {0.0, 1.0};
  args.ints = {0, 0};
  EXPECT_EQ(vgpu::run_kernel(exe, args).value, 42.0);
  EXPECT_EQ(vgpu::run_kernel_tree(exe, args).value, 42.0);
}

TEST(Bytecode, NanSubscriptIndexesElementZero) {
  // arr[0] = 9; comp = arr[0.0/0.0]: a NaN subscript must clamp to element
  // 0 in both backends (previously UB in the tree-walk interpreter).
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int arr = b.add_array_param();
  b.store_array(arr, make_literal(A, 0.0), make_literal(A, 9.0));
  b.assign_comp(
      AssignOp::Set,
      make_array(A, arr, make_bin(A, BinOp::Div, make_literal(A, 0.0), make_literal(A, 0.0))));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {0.0, 1.0};
  args.ints = {0, 0};
  const auto vm = vgpu::run_kernel(exe, args);
  const auto tree = vgpu::run_kernel_tree(exe, args);
  EXPECT_EQ(vm.value, 9.0);
  expect_identical(vm, tree, "NaN subscript");
}

TEST(Bytecode, LoopVarAfterLoopMatchesOracle) {
  // `for (i < n) comp += 1; comp = i`: after the loop both backends must
  // observe the final iteration value (n-1), and a zero-trip loop must
  // leave the variable untouched (0 at run start).
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  b.begin_for(n);
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  b.end_block();
  b.assign_comp(AssignOp::Set, make_loop_var(A, 0));
  const opt::Executable exe = compile_o0(b.build());
  for (const int bound : {3, 1, 0}) {
    vgpu::KernelArgs args;
    args.fp = {0.0, 0.0};
    args.ints = {0, bound};
    const auto vm = vgpu::run_kernel(exe, args);
    const auto tree = vgpu::run_kernel_tree(exe, args);
    EXPECT_EQ(vm.value_bits, tree.value_bits) << "bound " << bound;
    EXPECT_EQ(vm.value, bound > 0 ? bound - 1 : 0) << "bound " << bound;
  }
}

TEST(Bytecode, HugeLiteralSubscriptMatchesOracle) {
  // A literal subscript beyond long long range saturates identically in
  // both backends (previously UB in the tree-walk Literal fast path).
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int arr = b.add_array_param();
  b.store_array(arr, make_literal(A, 255.0), make_literal(A, 7.0));
  b.assign_comp(AssignOp::Set, make_array(A, arr, make_literal(A, 1e30)));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs args;
  args.fp = {0.0, 1.0};
  args.ints = {0, 0};
  const auto vm = vgpu::run_kernel(exe, args);
  const auto tree = vgpu::run_kernel_tree(exe, args);
  EXPECT_EQ(vm.value, 7.0);
  EXPECT_EQ(vm.value_bits, tree.value_bits);
}

TEST(Bytecode, MalformedStatementFaultsOnlyWhenReached) {
  // A store to a non-array (scalar) parameter is structurally malformed,
  // but guarded by `if (0 != 0)` it never executes: like the tree-walk
  // oracle, the VM must run the program cleanly, and must throw the same
  // error once the guard lets the statement execute.
  const auto build = [](double guard_rhs) {
    // Raw IR assembly: ProgramBuilder (rightly) refuses to emit this.
    Arena A;
    std::vector<Param> params{{ParamKind::Comp, "comp"},
                              {ParamKind::Scalar, "var_1"}};
    std::vector<StmtId> guarded;
    guarded.push_back(
        make_store_array(A, 1, make_literal(A, 0.0), make_literal(A, 1.0)));
    std::vector<StmtId> body;
    body.push_back(make_if(
        A, make_cmp(A, CmpOp::Ne, make_literal(A, 0.0), make_literal(A, guard_rhs)),
        guarded));
    body.push_back(make_assign_comp(A, AssignOp::Add, make_literal(A, 2.0)));
    return compile_o0(Program(Precision::FP64, std::move(params), std::move(A),
                              std::move(body)));
  };
  vgpu::KernelArgs args;
  args.fp = {1.0, 3.0};
  args.ints = {0, 0};
  const opt::Executable unreachable = build(0.0);
  EXPECT_EQ(vgpu::run_kernel(unreachable, args).value, 3.0);
  EXPECT_EQ(vgpu::run_kernel_tree(unreachable, args).value, 3.0);
  const opt::Executable reachable = build(1.0);
  EXPECT_THROW((void)vgpu::run_kernel(reachable, args), std::runtime_error);
  EXPECT_THROW((void)vgpu::run_kernel_tree(reachable, args), std::runtime_error);
}

TEST(Bytecode, ArgumentCountMismatchThrows) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs bad;
  bad.fp = {1.0, 2.0};
  bad.ints = {0, 0};
  EXPECT_THROW((void)vgpu::run_kernel(exe, bad), std::runtime_error);
}

TEST(Bytecode, BatchedSweepBitIdenticalToPerRunLoop) {
  // compare_batch must be indistinguishable from the compare_run loop it
  // replaced in the campaign driver: same bits, flags, op counts and
  // classification, for both backends.
  gen::GenConfig cfg;
  const gen::Generator generator(cfg, 77);
  const gen::InputGenerator input_gen(77);
  for (std::uint64_t pi = 0; pi < 25; ++pi) {
    const Program program = generator.generate(pi);
    std::vector<vgpu::KernelArgs> inputs;
    for (int ii = 0; ii < 6; ++ii) inputs.push_back(input_gen.generate(program, pi, ii));
    for (const opt::OptLevel level : opt::kAllOptLevels) {
      const diff::CompiledSet set = diff::compile_pair(program, level);
      for (const auto backend :
           {vgpu::ExecBackend::Bytecode, vgpu::ExecBackend::TreeWalk}) {
        vgpu::set_exec_backend(backend);
        const auto batch = diff::compare_batch(set, inputs);
        ASSERT_EQ(batch.size(), inputs.size());
        for (std::size_t ii = 0; ii < inputs.size(); ++ii) {
          const auto single = diff::compare_run(set, inputs[ii]);
          EXPECT_EQ(batch[ii].platforms[0].bits, single.platforms[0].bits);
          EXPECT_EQ(batch[ii].platforms[1].bits, single.platforms[1].bits);
          EXPECT_EQ(batch[ii].platforms[0].flags.raw(),
                    single.platforms[0].flags.raw());
          EXPECT_EQ(batch[ii].platforms[1].op_count,
                    single.platforms[1].op_count);
          EXPECT_EQ(batch[ii].cls, single.cls);
        }
      }
      vgpu::set_exec_backend(vgpu::ExecBackend::Bytecode);
    }
  }
}

TEST(Bytecode, BatchRejectsMismatchedArguments) {
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  b.assign_comp(AssignOp::Add, make_literal(A, 1.0));
  const opt::Executable exe = compile_o0(b.build());
  vgpu::KernelArgs good;
  good.fp = {1.0};
  good.ints = {0};
  vgpu::KernelArgs bad;
  bad.fp = {1.0, 2.0};
  bad.ints = {0, 0};
  const vgpu::KernelArgs inputs[] = {good, bad};
  vgpu::RunResult out[2];
  vgpu::ExecContext ctx;
  EXPECT_THROW(exe.bytecode().run_batch(inputs, ctx, out), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Lane-parallel engines (GPUDIFF_SIMD): every engine must be bit-identical
// to the plain interpreter loop — values, flags, op and cycle counts —
// including under divergent control flow and through trap re-runs.
// ---------------------------------------------------------------------------

TEST(BytecodeLanes, GeneratedProgramsBitIdenticalAcrossEngines) {
  // The dbg-style sweep that caught the probe-underflow bug: generated
  // programs (subnormal-heavy inputs) across opt levels and platforms,
  // fp64 and fp32, every runnable engine against the interpreter loop.
  const auto engines = runnable_engines();
  for (const Precision precision : {Precision::FP64, Precision::FP32}) {
    gen::GenConfig cfg;
    cfg.precision = precision;
    const gen::Generator generator(cfg, 77);
    const gen::InputGenerator input_gen(77);
    for (std::uint64_t pi = 0; pi < 25; ++pi) {
      const Program program = generator.generate(pi);
      std::vector<vgpu::KernelArgs> inputs;
      for (int ii = 0; ii < 6; ++ii)
        inputs.push_back(input_gen.generate(program, pi, ii));
      for (const opt::OptLevel level : opt::kAllOptLevels) {
        const diff::CompiledSet set = diff::compile_pair(program, level);
        for (const opt::Executable& exe : set.exes) {
          std::vector<vgpu::RunResult> ref(inputs.size());
          {
            ScopedEngine off(support::SimdOverride::Off);
            vgpu::run_kernel_batch(exe, inputs, ref.data());
          }
          for (const support::SimdOverride mode : engines) {
            ScopedEngine eng(mode);
            std::vector<vgpu::RunResult> got(inputs.size());
            vgpu::run_kernel_batch(exe, inputs, got.data());
            for (std::size_t ii = 0; ii < inputs.size(); ++ii) {
              expect_identical(got[ii], ref[ii],
                               std::string(support::to_string(mode)) +
                                   " program " + std::to_string(pi) + " input " +
                                   std::to_string(ii) + " " + exe.description());
              if (HasFailure()) return;
            }
          }
        }
      }
    }
  }
}

TEST(BytecodeLanes, DivergentControlFlowBitIdenticalAcrossEngines) {
  // Hand-built worst case for the mask discipline: per-input trip counts
  // (including zero-trip), a data-dependent if whose body re-tests every
  // step, and masked div/add/mul — so lanes of one group run different
  // instruction sequences and must still match the sequential loop
  // exactly, for inputs spanning subnormals, zeros, infinities and NaN.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int n = b.add_int_param();
  b.begin_for(n);
  b.begin_if(make_cmp(A, CmpOp::Lt, make_param(A, 0), make_literal(A, 4.0)));
  b.assign_comp(AssignOp::Div, make_literal(A, 3.0));
  b.assign_comp(AssignOp::Add, make_literal(A, 1.25));
  b.end_block();
  b.assign_comp(AssignOp::Mul, make_literal(A, 1.125));
  b.end_block();
  b.assign_comp(AssignOp::Sub, make_loop_var(A, 0));

  const double comps[] = {0.5,    -3.0, 1e-310, 100.0,
                          -1e300, 0.0,  1e308,  std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity(), 2.0, 3.5, -1e-320, 7.0};
  const auto engines = runnable_engines();
  const Program program = b.build();
  for (const opt::OptLevel level : {opt::OptLevel::O0, opt::OptLevel::O2}) {
    const opt::Executable exe =
        opt::compile(program, {opt::Toolchain::Nvcc, level, false});
    std::vector<vgpu::KernelArgs> inputs;
    for (std::size_t i = 0; i < std::size(comps); ++i) {
      vgpu::KernelArgs args;
      args.fp = {comps[i], 0.0};
      args.ints = {0, static_cast<int>(i % 7)};  // trip counts 0..6
      inputs.push_back(args);
    }
    std::vector<vgpu::RunResult> ref(inputs.size());
    {
      ScopedEngine off(support::SimdOverride::Off);
      vgpu::run_kernel_batch(exe, inputs, ref.data());
    }
    for (const support::SimdOverride mode : engines) {
      ScopedEngine eng(mode);
      std::vector<vgpu::RunResult> got(inputs.size());
      vgpu::run_kernel_batch(exe, inputs, got.data());
      for (std::size_t i = 0; i < inputs.size(); ++i)
        expect_identical(got[i], ref[i],
                         std::string(support::to_string(mode)) + " input " +
                             std::to_string(i));
    }
  }
}

TEST(BytecodeLanes, BatchSizesSpanningGroupBoundaries) {
  // Sizes around the group widths (1, W-1, W, W+1, 2W, 2W+3) must all
  // produce the per-input results of the sequential loop — the tail path
  // and the grouped path meet inside one batch.
  gen::GenConfig cfg;
  const gen::Generator generator(cfg, 9);
  const gen::InputGenerator input_gen(9);
  const Program program = generator.generate(3);
  const opt::Executable exe =
      opt::compile(program, {opt::Toolchain::Nvcc, opt::OptLevel::O1, false});
  std::vector<vgpu::KernelArgs> pool;
  for (int ii = 0; ii < 19; ++ii)
    pool.push_back(input_gen.generate(program, 3, ii));
  std::vector<vgpu::RunResult> ref(pool.size());
  {
    ScopedEngine off(support::SimdOverride::Off);
    vgpu::run_kernel_batch(exe, pool, ref.data());
  }
  for (const support::SimdOverride mode : runnable_engines()) {
    ScopedEngine eng(mode);
    for (const std::size_t count : {std::size_t{1}, std::size_t{3},
                                    std::size_t{4}, std::size_t{5},
                                    std::size_t{8}, std::size_t{9},
                                    std::size_t{16}, std::size_t{19}}) {
      std::vector<vgpu::RunResult> got(count);
      vgpu::run_kernel_batch(
          exe, std::span<const vgpu::KernelArgs>(pool.data(), count),
          got.data());
      for (std::size_t i = 0; i < count; ++i)
        expect_identical(got[i], ref[i],
                         std::string(support::to_string(mode)) + " count " +
                             std::to_string(count) + " input " +
                             std::to_string(i));
    }
  }
}

TEST(BytecodeLanes, AdaptiveDispatchVerdictFromInstructionMix) {
  // The compile-time lane-affinity verdict that steers automatic engine
  // selection: loops disqualify (runtime trip counts diverge the lanes),
  // and straight-line code qualifies only with enough vectorizable
  // arithmetic to amortize the group setup.  A single divide clears the
  // bar (cycle-model weight 16 in fp64); a lone cheap accumulate does not.
  {
    ProgramBuilder b(Precision::FP64);
    Arena& A = b.arena();
    b.assign_comp(AssignOp::Div, make_param(A, 0));
    const opt::Executable exe = compile_o0(b.build());
    EXPECT_TRUE(exe.bytecode().lane_profitable());
  }
  {
    ProgramBuilder b(Precision::FP64);
    Arena& A = b.arena();
    b.assign_comp(AssignOp::Add, make_param(A, 0));
    const opt::Executable exe = compile_o0(b.build());
    EXPECT_FALSE(exe.bytecode().lane_profitable());
  }
  {
    ProgramBuilder b(Precision::FP64);
    Arena& A = b.arena();
    const int n = b.add_int_param();
    b.begin_for(n);
    b.assign_comp(AssignOp::Div, make_param(A, 0));
    b.end_block();
    const opt::Executable exe = compile_o0(b.build());
    EXPECT_FALSE(exe.bytecode().lane_profitable());
  }
}

TEST(BytecodeLanes, BatchThrowLeavesNoStaleOutputs) {
  // Regression for the partial-state bug: a throw mid-batch used to leave
  // whatever memory the caller handed in for the unreached outputs.  Now
  // every output is either a completed result (inputs before the faulting
  // one, in input order) or a zeroed RunResult{} — under every engine,
  // whose grouped execution must re-run the faulting group scalar to keep
  // exactly these sequential semantics.
  Arena A;
  std::vector<Param> params{{ParamKind::Comp, "comp"},
                            {ParamKind::Scalar, "var_1"}};
  std::vector<StmtId> guarded;
  guarded.push_back(
      make_store_array(A, 1, make_literal(A, 0.0), make_literal(A, 1.0)));
  std::vector<StmtId> body;
  body.push_back(make_if(
      A, make_cmp(A, CmpOp::Ne, make_param(A, 1), make_literal(A, 0.0)),
      guarded));
  body.push_back(make_assign_comp(A, AssignOp::Add, make_literal(A, 2.0)));
  const opt::Executable exe = compile_o0(
      Program(Precision::FP64, std::move(params), std::move(A), std::move(body)));
  std::vector<vgpu::KernelArgs> inputs;
  for (int i = 0; i < 11; ++i) {
    vgpu::KernelArgs args;
    args.fp = {1.0, i == 6 ? 1.0 : 0.0};  // input 6 reaches the trap
    args.ints = {0, 0};
    inputs.push_back(args);
  }
  for (const support::SimdOverride mode : runnable_engines()) {
    ScopedEngine eng(mode);
    std::vector<vgpu::RunResult> out(inputs.size());
    for (auto& r : out) {  // stale garbage the contract must erase
      r.value_bits = 0xDEADBEEFull;
      r.op_count = 123;
    }
    vgpu::ExecContext ctx;
    EXPECT_THROW(exe.bytecode().run_batch(inputs, ctx, out.data()),
                 std::runtime_error)
        << support::to_string(mode);
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_EQ(out[i].value, 3.0) << support::to_string(mode) << " input " << i;
      EXPECT_GT(out[i].op_count, 0u) << support::to_string(mode) << " input " << i;
    }
    for (std::size_t i = 6; i < out.size(); ++i) {
      EXPECT_EQ(out[i].value_bits, 0u)
          << support::to_string(mode) << " input " << i;
      EXPECT_EQ(out[i].op_count, 0u)
          << support::to_string(mode) << " input " << i;
    }
  }
}

TEST(Bytecode, CompiledProgramIsCachedOnExecutable) {
  gen::GenConfig cfg;
  const gen::Generator generator(cfg, 7);
  const opt::Executable exe = opt::compile(
      generator.generate(0), {opt::Toolchain::Nvcc, opt::OptLevel::O2, false});
  ASSERT_NE(exe.bytecode_cache, nullptr);  // built eagerly by compile()
  const vgpu::BytecodeProgram* first = &exe.bytecode();
  EXPECT_EQ(first, &exe.bytecode());  // stable across calls
  const opt::Executable copy = exe;   // copies share the lowering
  EXPECT_EQ(copy.bytecode_cache.get(), exe.bytecode_cache.get());
}

}  // namespace
