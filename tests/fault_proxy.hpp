#pragma once
// Fault-injection TCP proxy for the coordinator tests: a line-framed
// relay that sits between a worker and the coordinator and — on a
// scripted, deterministic schedule — drops, delays, duplicates, reorders
// or severs messages in either direction.  The lease protocol's claim is
// that none of this can change a single byte of the merged results; this
// proxy is how the tests earn that sentence.
//
// Header-only on purpose: every tests/*.cpp is its own test binary under
// the build's glob, so shared test infrastructure lives in headers.
//
// The proxy relays whole '\n'-terminated lines (the wire protocol's frame
// unit), which is what makes per-message faults meaningful: a "drop" loses
// exactly one request or response, a "duplicate" replays one, a "reorder"
// holds one back and delivers it after its successor.  Decisions come
// from a caller-supplied function of (direction, line index) so a test
// can script exact fault sequences or drive them from a seeded RNG —
// deterministically reproducible either way.

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.hpp"

namespace gpudiff::testing {

enum class FaultKind {
  Forward,    ///< relay the line unmodified
  Drop,       ///< swallow the line (the retry policy's problem)
  Duplicate,  ///< relay the line twice (the seq discipline's problem)
  Reorder,    ///< hold the line back; deliver it after the next one
  Sever,      ///< drop the line and cut the connection
};

struct Fault {
  FaultKind kind = FaultKind::Forward;
  double delay_seconds = 0.0;  ///< sleep before relaying (both copies)
};

enum class Direction { ClientToServer, ServerToClient };

/// decide(direction, line_index) — line_index counts per connection and
/// direction, from 0.  A null decide forwards everything.
class FaultProxy {
 public:
  using Decide = std::function<Fault(Direction, int line_index)>;

  FaultProxy(std::string upstream_host, int upstream_port,
             Decide decide = nullptr)
      : upstream_host_(std::move(upstream_host)),
        upstream_port_(upstream_port),
        decide_(std::move(decide)) {
    listener_.listen("127.0.0.1", 0);
    threads_.emplace_back([this] { accept_loop(); });
  }

  ~FaultProxy() { stop(); }

  int port() const noexcept { return listener_.port(); }
  int connections_accepted() const noexcept { return accepted_.load(); }

  /// Cut every live connection now (workers must reconnect through their
  /// retry policy).  New connections are still accepted.
  void sever_all() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& conn : connections_) conn->severed.store(true);
  }

  void stop() {
    if (stop_.exchange(true)) return;
    sever_all();
    // Join before closing the listener: the accept loop and every pump
    // poll stop_/severed at a short timeout, so they exit on their own,
    // and the fd is only closed once nothing can still be polling it.
    // Any pump spawned before the flag flipped landed in threads_ before
    // the swap (accept_loop re-checks stop_ under the lock).
    std::vector<std::thread> threads;
    {
      std::lock_guard<std::mutex> lock(mu_);
      threads.swap(threads_);
    }
    for (auto& t : threads)
      if (t.joinable()) t.join();
    listener_.close();
  }

 private:
  struct Connection {
    net::Socket client;
    net::Socket upstream;
    std::atomic<bool> severed{false};
  };

  void accept_loop() {
    while (!stop_.load()) {
      net::Socket client = listener_.accept(0.05);
      if (!client.valid()) continue;
      net::Socket upstream = net::connect_tcp(upstream_host_, upstream_port_,
                                              /*timeout_seconds=*/2.0);
      if (!upstream.valid()) continue;  // refuse by dropping the client
      auto conn = std::make_shared<Connection>();
      conn->client = std::move(client);
      conn->upstream = std::move(upstream);
      accepted_.fetch_add(1);
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_.load()) return;
      connections_.push_back(conn);
      threads_.emplace_back(
          [this, conn] { pump(conn, Direction::ClientToServer); });
      threads_.emplace_back(
          [this, conn] { pump(conn, Direction::ServerToClient); });
    }
  }

  // One direction of one connection.  Each pump reads from its source with
  // a short timeout so stop_/severed are honored promptly; the sockets
  // themselves are only read by their one pump (client by C→S, upstream by
  // S→C) and written by the opposite pump — Socket::read_line buffers
  // internally, send_all does not, so this split is data-race-free.
  void pump(const std::shared_ptr<Connection>& conn, Direction dir) {
    net::Socket& from =
        dir == Direction::ClientToServer ? conn->client : conn->upstream;
    net::Socket& to =
        dir == Direction::ClientToServer ? conn->upstream : conn->client;
    int line_index = 0;
    std::string held;  // a reordered line waiting for its successor
    bool holding = false;
    const auto relay = [&](const std::string& line) {
      return to.send_all(line + "\n", 5.0) == net::IoStatus::Ok;
    };
    while (!stop_.load() && !conn->severed.load()) {
      std::string line;
      const net::IoStatus status = from.read_line(&line, 0.05);
      if (status == net::IoStatus::Timeout) continue;
      if (status != net::IoStatus::Ok) break;
      const Fault fault =
          decide_ ? decide_(dir, line_index++) : Fault{};
      if (fault.delay_seconds > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(fault.delay_seconds));
      bool ok = true;
      switch (fault.kind) {
        case FaultKind::Drop:
          break;
        case FaultKind::Sever:
          conn->severed.store(true);
          break;
        case FaultKind::Duplicate:
          ok = relay(line) && relay(line);
          break;
        case FaultKind::Reorder:
          if (holding) ok = relay(line);  // only hold one line at a time
          else { held = line; holding = true; line.clear(); }
          break;
        case FaultKind::Forward:
          ok = relay(line);
          break;
      }
      if (ok && holding && fault.kind != FaultKind::Reorder) {
        // The successor went out (or was dropped); release the held line
        // behind it — the reorder.
        ok = relay(held);
        holding = false;
      }
      if (!ok) break;
    }
    conn->severed.store(true);
  }

  std::string upstream_host_;
  int upstream_port_ = 0;
  Decide decide_;
  net::Listener listener_;
  std::atomic<bool> stop_{false};
  std::atomic<int> accepted_{0};
  std::mutex mu_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;
};

}  // namespace gpudiff::testing
