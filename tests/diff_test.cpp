// Tests for the differential-testing core: pair classification, the
// runner, campaign statistics, metadata protocol, report rendering.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "diff/campaign.hpp"
#include "diff/metadata.hpp"
#include "diff/report.hpp"
#include "diff/runner.hpp"
#include "fp/bits.hpp"
#include "ir/builder.hpp"

namespace {

using namespace gpudiff;
using namespace gpudiff::diff;
using fp::Outcome;
using fp::OutcomeClass;

std::uint64_t bits_of(double v) { return fp::to_bits(v); }

// ---------------------------------------------------------------------------
// classify_pair: the full 4x4 outcome matrix
// ---------------------------------------------------------------------------

struct PairCase {
  const char* name;
  double a, b;
  DiscrepancyClass expected;
};

class ClassifyPair : public ::testing::TestWithParam<PairCase> {};

TEST_P(ClassifyPair, Classifies) {
  const auto& c = GetParam();
  const auto cls = classify_pair(fp::outcome_of(c.a), bits_of(c.a),
                                 fp::outcome_of(c.b), bits_of(c.b));
  EXPECT_EQ(cls, c.expected) << c.name;
  // Classification is symmetric.
  EXPECT_EQ(classify_pair(fp::outcome_of(c.b), bits_of(c.b),
                          fp::outcome_of(c.a), bits_of(c.a)),
            c.expected);
}

const double kQNaN = std::numeric_limits<double>::quiet_NaN();
const double kPInf = std::numeric_limits<double>::infinity();

INSTANTIATE_TEST_SUITE_P(
    Matrix, ClassifyPair,
    ::testing::Values(
        PairCase{"nan vs inf", kQNaN, kPInf, DiscrepancyClass::NaN_Inf},
        PairCase{"nan vs neg inf", kQNaN, -kPInf, DiscrepancyClass::NaN_Inf},
        PairCase{"nan vs zero", kQNaN, 0.0, DiscrepancyClass::NaN_Zero},
        PairCase{"nan vs num", kQNaN, 3.5, DiscrepancyClass::NaN_Num},
        PairCase{"inf vs zero", kPInf, -0.0, DiscrepancyClass::Inf_Zero},
        PairCase{"inf vs num", -kPInf, 2.0, DiscrepancyClass::Inf_Num},
        PairCase{"num vs zero", 5.0, 0.0, DiscrepancyClass::Num_Zero},
        PairCase{"num vs num", 1.0, 1.0000000000000002, DiscrepancyClass::Num_Num},
        PairCase{"subnormal vs zero", 1e-310, 0.0, DiscrepancyClass::Num_Zero},
        PairCase{"same num", 2.5, 2.5, DiscrepancyClass::None},
        PairCase{"sign of zero excluded", 0.0, -0.0, DiscrepancyClass::None},
        PairCase{"sign of inf excluded", kPInf, -kPInf, DiscrepancyClass::None},
        PairCase{"sign of nan excluded", kQNaN, -kQNaN, DiscrepancyClass::None},
        PairCase{"pos vs neg num", 1.5, -1.5, DiscrepancyClass::Num_Num}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (ch == ' ') ch = '_';
      return n;
    });

TEST(ClassifyPair, NaNPayloadsAreNotDifferences) {
  const double qnan1 = fp::quiet_nan<double>();
  const double qnan2 = fp::from_bits<double>(fp::to_bits(qnan1) | 1);
  EXPECT_EQ(classify_pair(fp::outcome_of(qnan1), bits_of(qnan1),
                          fp::outcome_of(qnan2), bits_of(qnan2)),
            DiscrepancyClass::None);
}

TEST(ClassifyPair, IndexRoundTrip) {
  for (int i = 0; i < kDiscrepancyClassCount; ++i)
    EXPECT_EQ(class_index(class_from_index(i)), i);
}

// ---------------------------------------------------------------------------
// runner
// ---------------------------------------------------------------------------

TEST(Runner, CeilCaseStudyDivergesAtO0) {
  // Paper Fig. 5 in miniature: comp += tmp_1 / ceil(1.5955E-125).
  ir::ProgramBuilder b(ir::Precision::FP64);
  ir::Arena& A = b.arena();
  const int t = b.decl_temp(ir::make_literal(A, 1.1147e-307, "+1.1147E-307"));
  b.assign_comp(ir::AssignOp::Add,
                ir::make_bin(A, ir::BinOp::Div, ir::make_temp(A, t),
                             ir::make_call(A, ir::MathFn::Ceil,
                                           ir::make_literal(A, 1.5955e-125,
                                                            "+1.5955E-125"))));
  const ir::Program p = b.build();
  vgpu::KernelArgs args;
  args.fp = {1.2374e-306};
  args.ints = {0};
  const auto cmp = run_differential(p, args, opt::OptLevel::O0);
  EXPECT_EQ(cmp.cls, DiscrepancyClass::Inf_Num);
  EXPECT_EQ(cmp.platforms[0].printed(), "inf");
  EXPECT_EQ(cmp.platforms[1].outcome.cls, OutcomeClass::Number);
}

TEST(Runner, IdenticalProgramsAgreeOnBenignInputs) {
  ir::ProgramBuilder b(ir::Precision::FP64);
  ir::Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(ir::AssignOp::Add,
                ir::make_bin(A, ir::BinOp::Mul, ir::make_param(A, x), ir::make_param(A, x)));
  const ir::Program p = b.build();
  vgpu::KernelArgs args;
  args.fp = {1.0, 3.0};
  args.ints = {0, 0};
  for (auto level : opt::kAllOptLevels) {
    const auto cmp = run_differential(p, args, level);
    EXPECT_FALSE(cmp.discrepant()) << opt::to_string(level);
    EXPECT_EQ(cmp.platforms[0].printed(), "10");
  }
}

TEST(Runner, CompiledSetReusableAcrossInputs) {
  ir::ProgramBuilder b(ir::Precision::FP64);
  ir::Arena& A = b.arena();
  const int x = b.add_scalar_param();
  b.assign_comp(ir::AssignOp::Add, ir::make_param(A, x));
  const ir::Program p = b.build();
  const CompiledSet set = compile_pair(p, opt::OptLevel::O2);
  for (double v : {1.0, -2.5, 1e300}) {
    vgpu::KernelArgs args;
    args.fp = {0.0, v};
    args.ints = {0, 0};
    const auto cmp = compare_run(set, args);
    EXPECT_FALSE(cmp.discrepant());
  }
}

// ---------------------------------------------------------------------------
// campaign
// ---------------------------------------------------------------------------

CampaignConfig small_config(int programs = 60) {
  CampaignConfig c;
  c.num_programs = programs;
  c.inputs_per_program = 5;
  c.seed = 1234;
  return c;
}

TEST(Campaign, AccountingIsConsistent) {
  const auto r = run_campaign(small_config());
  EXPECT_EQ(r.levels.size(), 5u);
  EXPECT_EQ(r.per_level.size(), 5u);
  for (const auto& s : r.per_level)
    EXPECT_EQ(s.comparisons, 60u * 5u);
  EXPECT_EQ(r.comparisons_total(), 60u * 5u * 5u);
  EXPECT_EQ(r.runs_total(), 2 * r.comparisons_total());
  // Records match the per-level class counts.
  std::uint64_t recorded = r.records.size();
  EXPECT_EQ(recorded, r.discrepancies_total());
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  auto cfg = small_config();
  cfg.threads = 1;
  const auto r1 = run_campaign(cfg);
  cfg.threads = 4;
  const auto r2 = run_campaign(cfg);
  ASSERT_EQ(r1.records.size(), r2.records.size());
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    EXPECT_EQ(r1.records[i].program_index, r2.records[i].program_index);
    EXPECT_EQ(r1.records[i].printed, r2.records[i].printed);
  }
  for (std::size_t li = 0; li < r1.per_level.size(); ++li)
    EXPECT_EQ(r1.per_level[li].pairs, r2.per_level[li].pairs);
}

TEST(Campaign, O1ThroughO3CountsIdentical) {
  const auto r = run_campaign(small_config(120));
  const auto& o1 = r.stats_for(opt::OptLevel::O1);
  const auto& o2 = r.stats_for(opt::OptLevel::O2);
  const auto& o3 = r.stats_for(opt::OptLevel::O3);
  EXPECT_EQ(o1.pairs[0].class_counts, o2.pairs[0].class_counts);
  EXPECT_EQ(o2.pairs[0].class_counts, o3.pairs[0].class_counts);
  EXPECT_EQ(o1.pairs[0].adjacency, o3.pairs[0].adjacency);
}

TEST(Campaign, AdjacencySumsMatchClassCounts) {
  const auto r = run_campaign(small_config(120));
  for (const auto& s : r.per_level) {
    for (const auto& pair : s.pairs) {
      std::uint64_t adj_total = 0;
      for (int i = 0; i < 4; ++i)
        for (int j = 0; j < 4; ++j) adj_total += pair.adjacency[i][j];
      EXPECT_EQ(adj_total, pair.discrepancy_total());
    }
  }
}

TEST(Campaign, LevelSubsetsWork) {
  auto cfg = small_config();
  cfg.levels = {opt::OptLevel::O0, opt::OptLevel::O3_FastMath};
  const auto r = run_campaign(cfg);
  EXPECT_EQ(r.per_level.size(), 2u);
  EXPECT_THROW(r.stats_for(opt::OptLevel::O2), std::out_of_range);
  EXPECT_NO_THROW(r.stats_for(opt::OptLevel::O3_FastMath));
}

TEST(Campaign, PaperShapeHolds) {
  // Loose qualitative assertions mirroring the paper's findings; exact
  // counts are configuration-dependent, the *shape* is load-bearing.
  CampaignConfig cfg;
  cfg.num_programs = 400;
  cfg.inputs_per_program = 7;
  cfg.seed = 42;
  const auto fp64 = run_campaign(cfg);
  const auto& o0 = fp64.stats_for(opt::OptLevel::O0);
  const auto& o3 = fp64.stats_for(opt::OptLevel::O3);
  const auto& fm = fp64.stats_for(opt::OptLevel::O3_FastMath);
  // Optimization levels add discrepancies, never remove the O0 baseline.
  EXPECT_GE(o3.discrepancy_total(), o0.discrepancy_total());
  EXPECT_GE(fm.discrepancy_total(), o3.discrepancy_total());
  // Num-Num is the most frequent class at O0 (paper §IV-C.1: "The Number
  // vs. Number discrepancies were the most frequent").
  const auto nn = o0.pairs[0].class_counts[class_index(DiscrepancyClass::Num_Num)];
  for (int ci = 0; ci < kDiscrepancyClassCount; ++ci) {
    if (class_from_index(ci) == DiscrepancyClass::Num_Num) continue;
    EXPECT_GE(nn, o0.pairs[0].class_counts[ci]) << to_string(class_from_index(ci));
  }

  auto cfg32 = cfg;
  cfg32.gen.precision = ir::Precision::FP32;
  const auto fp32 = run_campaign(cfg32);
  // FP32 fast math explodes relative to FP32 O3 (paper: 90 -> 13,877).
  EXPECT_GT(fp32.stats_for(opt::OptLevel::O3_FastMath).discrepancy_total(),
            5 * fp32.stats_for(opt::OptLevel::O3).discrepancy_total());

  // HIPIFY conversion adds discrepancies relative to native HIP
  // (paper Table IV: 2,426 -> 2,716).
  auto cfg_h = cfg;
  cfg_h.hipify_converted = true;
  const auto hip = run_campaign(cfg_h);
  EXPECT_GE(hip.discrepancies_total(), fp64.discrepancies_total());
}

// ---------------------------------------------------------------------------
// metadata (between-platform protocol)
// ---------------------------------------------------------------------------

TEST(Metadata, TwoSystemFlowMatchesDirectCampaign) {
  const auto cfg = small_config(40);
  // System 1: create + run nvcc side.  System 2: run hipcc side.
  Metadata md = Metadata::create(cfg);
  const auto& nvcc = *opt::find_platform("nvcc");
  const auto& hipcc = *opt::find_platform("hipcc");
  EXPECT_FALSE(md.has_platform(nvcc));
  md.record_platform(nvcc);
  EXPECT_TRUE(md.has_platform(nvcc));
  EXPECT_FALSE(md.has_platform(hipcc));
  md.record_platform(hipcc);
  const CampaignResults via_metadata = md.analyze();
  const CampaignResults direct = run_campaign(cfg);
  ASSERT_EQ(via_metadata.per_level.size(), direct.per_level.size());
  for (std::size_t li = 0; li < direct.per_level.size(); ++li) {
    EXPECT_EQ(via_metadata.per_level[li].pairs, direct.per_level[li].pairs)
        << "level " << li;
  }
}

TEST(Metadata, SaveLoadRoundTrip) {
  const auto cfg = small_config(10);
  Metadata md = Metadata::create(cfg);
  md.record_platform(*opt::find_platform("nvcc"));
  const auto path = std::filesystem::temp_directory_path() / "gpudiff_md_test.json";
  md.save(path.string());
  Metadata loaded = Metadata::load(path.string());
  EXPECT_EQ(loaded.json(), md.json());
  // Second system continues from the file.
  loaded.record_platform(*opt::find_platform("hipcc"));
  EXPECT_NO_THROW(loaded.analyze());
  std::filesystem::remove(path);
}

TEST(Metadata, AnalyzeRequiresAllPlatforms) {
  Metadata md = Metadata::create(small_config(5));
  EXPECT_THROW(md.analyze(), std::runtime_error);
  md.record_platform(*opt::find_platform("nvcc"));
  EXPECT_THROW(md.analyze(), std::runtime_error);
}

TEST(Metadata, TestsRegenerateFromFile) {
  const auto cfg = small_config(8);
  Metadata md = Metadata::create(cfg);
  EXPECT_EQ(md.test_count(), 8u);
  gen::Generator g(cfg.gen, cfg.seed);
  for (std::size_t i = 0; i < md.test_count(); ++i) {
    EXPECT_EQ(md.test_program(i).dump(), g.generate(i).dump());
    EXPECT_EQ(md.test_inputs(i).size(), static_cast<std::size_t>(cfg.inputs_per_program));
  }
}

TEST(Metadata, RejectsForeignJson) {
  EXPECT_THROW(Metadata::from_json(support::Json::parse(R"({"format":"other"})")),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// reports
// ---------------------------------------------------------------------------

TEST(Report, SummaryHasPaperRows) {
  const auto r64 = run_campaign(small_config(30));
  auto cfg_h = small_config(30);
  cfg_h.hipify_converted = true;
  const auto rh = run_campaign(cfg_h);
  auto cfg32 = small_config(30);
  cfg32.gen.precision = ir::Precision::FP32;
  const auto r32 = run_campaign(cfg32);
  const std::string s = render_summary(r64, rh, r32);
  EXPECT_NE(s.find("Total Programs"), std::string::npos);
  EXPECT_NE(s.find("Total Discrepancies (% of Total Runs)"), std::string::npos);
  EXPECT_NE(s.find("FP64 with HIPIFY"), std::string::npos);
  EXPECT_NE(s.find("Runs on HIPCC"), std::string::npos);
}

TEST(Report, PerLevelHasAllRowsAndTotals) {
  const auto r = run_campaign(small_config(30));
  const std::string s = render_per_level(r, "TEST TABLE");
  for (const char* row : {"O0", "O1", "O2", "O3", "O3_FM", "Total"})
    EXPECT_NE(s.find(row), std::string::npos) << row;
  for (const char* col : {"NaN, Inf", "Num, Zero", "Num, Num"})
    EXPECT_NE(s.find(col), std::string::npos) << col;
}

TEST(Report, AdjacencyRendersPerLevelMatrices) {
  const auto r = run_campaign(small_config(30));
  const std::string s = render_adjacency(r, "ADJ");
  EXPECT_NE(s.find("Opt: O0"), std::string::npos);
  EXPECT_NE(s.find("Opt: O3_FM"), std::string::npos);
  EXPECT_NE(s.find("NVCC \\ HIPCC"), std::string::npos);
  EXPECT_NE(s.find("(±) NaN"), std::string::npos);
}

TEST(Report, RecordsDrillDown) {
  const auto r = run_campaign(small_config(120));
  const std::string s = render_records(r, 5);
  EXPECT_NE(s.find("NVCC output"), std::string::npos);
}

}  // namespace
