// hipify_tool: the CUDA -> HIP translation step as a standalone utility
// (the role AMD's hipify-perl plays in the paper's third experiment).
//
// Generates a CUDA test (or reads one from a file), translates it, prints
// the translated source plus a conversion report, and — when the input is
// a generated test — runs the differential comparison in HIPIFY mode.

#include <cstdio>

#include "diff/runner.hpp"
#include "emit/emit.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "hipify/hipify.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("hipify_tool", "Translate a CUDA test to HIP");
  cli.add_int("index", 'n', "generated program index", 2);
  cli.add_int("seed", 's', "generator seed", 42);
  cli.add_string("file", 'f', "translate this .cu file instead of generating", "");
  if (!cli.parse(argc, argv)) return 1;

  std::string cuda_source;
  bool generated = false;
  ir::Program program;
  if (!cli.get_string("file").empty()) {
    cuda_source = support::read_file(cli.get_string("file"));
  } else {
    gen::GenConfig cfg;
    gen::Generator g(cfg, static_cast<std::uint64_t>(cli.get_int("seed")));
    program = g.generate(static_cast<std::uint64_t>(cli.get_int("index")));
    cuda_source = emit::emit_cuda(program);
    generated = true;
  }

  const auto result = hipify::hipify_source(cuda_source);
  std::printf("---- translated HIP source ----\n\n%s\n", result.source.c_str());
  std::printf("---- conversion report ----\n");
  std::printf("  API spellings rewritten : %d\n", result.replacements);
  std::printf("  kernel launches rewritten: %d\n", result.launches_converted);
  for (const auto& w : result.warnings)
    std::printf("  warning: %s\n", w.c_str());
  if (result.warnings.empty()) std::printf("  warnings: none\n");

  if (generated) {
    // Compare the HIPIFY-converted compilation against nvcc-sim, as the
    // paper's Tables VII/VIII campaigns do.
    gen::InputGenerator ig(static_cast<std::uint64_t>(cli.get_int("seed")));
    const auto args = ig.generate(
        program, static_cast<std::uint64_t>(cli.get_int("index")), 0);
    std::printf("\n---- differential run (HIPIFY compile mode) ----\n");
    for (auto level : opt::kAllOptLevels) {
      const auto cmp =
          diff::run_differential(program, args, level, /*hipify=*/true);
      std::printf("  -%-6s nvcc: %-24s hipcc(conv): %-24s %s\n",
                  opt::to_string(level).c_str(), cmp.platforms[0].printed().c_str(),
                  cmp.platforms[1].printed().c_str(),
                  cmp.discrepant() ? to_string(cmp.cls).c_str() : "");
    }
  }
  return 0;
}
