// Case Study 1 (paper Fig. 4): the fmod implementation difference.
//
// Scans fmod argument pairs across the exponent range, showing exactly
// where the vendors' algorithms part ways: agreement up to a 1024-bit
// exponent gap, divergent residues beyond it.

#include <cstdio>

#include "fp/bits.hpp"
#include "fp/hexfloat.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "vmath/mathlib.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("case_study_fmod",
                         "Explore the fmod divergence of paper Fig. 4");
  if (!cli.parse(argc, argv)) return 1;

  const auto& nv = vmath::nv_libdevice();
  const auto& amd = vmath::amd_ocml();

  // The paper's exact isolated expression.
  const double paper_x = 1.5917195493481116e+289;
  const double paper_y = 1.5793e-307;
  std::printf("Paper Fig. 4 isolated call: fmod(%.17g, %.17g)\n", paper_x, paper_y);
  std::printf("  nvcc-sim : %s\n", fp::print_g17(nv.call64(ir::MathFn::Fmod,
                                                           paper_x, paper_y)).c_str());
  std::printf("  hipcc-sim: %s   <- exact remainder, matches the paper's hipcc\n\n",
              fp::print_g17(amd.call64(ir::MathFn::Fmod, paper_x, paper_y)).c_str());

  support::Table t("fmod(x, y) agreement vs exponent gap (x = 1.5917...e+289)");
  t.set_header({"y", "exponent gap (bits)", "nvcc-sim", "hipcc-sim", "verdict"});
  for (double y : {1e250, 1e100, 1.0, 1e-10, 1e-100, 1e-250, 1e-290, 1.5793e-307}) {
    const double a = nv.call64(ir::MathFn::Fmod, paper_x, y);
    const double b = amd.call64(ir::MathFn::Fmod, paper_x, y);
    const int gap = fp::unbiased_exponent(paper_x) - fp::unbiased_exponent(y);
    t.add_row({fp::print_g17(y), std::to_string(gap), fp::print_g17(a),
               fp::print_g17(b), a == b ? "agree" : "DIVERGE"});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "nvcc-sim's division-based reduction unrolls 1024 bits of exponent\n"
      "gap; beyond that a single rounded multiply-subtract loses the low\n"
      "bits, landing on a different residue than OCML's exact integer\n"
      "algorithm — the paper's \"only this specific input\" behaviour.\n");
  return 0;
}
