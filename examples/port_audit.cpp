// Auditing a hand-written kernel before porting it between GPU vendors.
//
// A developer porting CUDA code to HIP can build their kernel with the IR
// builder, sweep realistic inputs, and learn at which optimization levels
// and input regimes the two platforms will disagree — the acceptance-
// testing use case the paper's introduction motivates.

#include <cstdio>

#include "diff/runner.hpp"
#include "emit/emit.hpp"
#include "gen/inputs.hpp"
#include "ir/builder.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  using namespace gpudiff::ir;
  support::CliParser cli("port_audit", "Audit a custom kernel across vendors");
  cli.add_int("sweeps", 'n', "input sweeps per optimization level", 2000);
  cli.add_int("seed", 's', "sweep seed", 11);
  if (!cli.parse(argc, argv)) return 1;

  // The kernel under audit: a damped-oscillator energy accumulator —
  // the kind of reduction loop ported between CUDA and HIP every day.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int steps = b.add_int_param();     // time steps
  const int omega = b.add_scalar_param();  // angular frequency
  const int gamma = b.add_scalar_param();  // damping
  const int amp = b.add_scalar_param();    // amplitude
  b.begin_for(steps);
  // comp += amp * exp(-gamma * i) * cos(omega * i) / (1 + gamma * i)
  b.assign_comp(
      AssignOp::Add,
      make_bin(A, BinOp::Div,
               make_bin(A, BinOp::Mul,
                        make_bin(A, BinOp::Mul, make_param(A, amp),
                                 make_call(A, MathFn::Exp,
                                           make_neg(A, make_bin(A, BinOp::Mul,
                                                             make_param(A, gamma),
                                                             make_loop_var(A, 0))))),
                        make_call(A, MathFn::Cos,
                                  make_bin(A, BinOp::Mul, make_param(A, omega),
                                           make_loop_var(A, 0)))),
               make_bin(A, BinOp::Add, make_literal(A, 1.0, "+1.0E0"),
                        make_bin(A, BinOp::Mul, make_param(A, gamma),
                                 make_loop_var(A, 0)))));
  b.end_block();
  const Program kernel = b.build();

  std::printf("kernel under audit:\n\n%s\n", emit::emit_kernel(kernel).c_str());

  support::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));
  const int sweeps = static_cast<int>(cli.get_int("sweeps"));

  support::Table t("Port audit: nvcc-sim vs hipcc-sim over " +
                   std::to_string(sweeps) + " input sweeps");
  t.set_header({"Opt level", "Diverging runs", "%", "worst |rel diff|"});
  for (auto level : opt::kAllOptLevels) {
    const auto pair = diff::compile_pair(kernel, level);
    int diverged = 0;
    double worst = 0.0;
    support::Rng sweep_rng = rng.split(static_cast<std::uint64_t>(level));
    for (int i = 0; i < sweeps; ++i) {
      vgpu::KernelArgs args;
      args.fp = {0.0, 0.0, sweep_rng.uniform(0.1, 20.0),
                 sweep_rng.uniform(0.001, 0.5), sweep_rng.uniform(-10.0, 10.0)};
      args.ints = {0, static_cast<int>(sweep_rng.range(4, 40)), 0, 0, 0};
      const auto cmp = diff::compare_run(pair, args);
      if (!cmp.discrepant()) continue;
      ++diverged;
      const double a = cmp.platforms[0].outcome.cls == fp::OutcomeClass::Number
                           ? std::abs((fp::from_bits<double>(cmp.platforms[0].bits) -
                                       fp::from_bits<double>(cmp.platforms[1].bits)) /
                                      fp::from_bits<double>(cmp.platforms[0].bits))
                           : 1.0;
      if (a > worst) worst = a;
    }
    char pct[16], w[24];
    std::snprintf(pct, sizeof pct, "%.2f", 100.0 * diverged / sweeps);
    std::snprintf(w, sizeof w, "%.3E", worst);
    t.add_row({opt::to_string(level), std::to_string(diverged), pct, w});
  }
  std::printf("%s\n", t.render().c_str());
  std::printf(
      "Reading: last-ULP libm differences surface at every level; fast math\n"
      "widens both the rate and the magnitude.  A porting team would gate\n"
      "acceptance on the -O3 row and treat the fast-math row as advisory.\n");
  return 0;
}
