// Between-platform acceptance testing (paper Fig. 3 + §III-E).
//
// Real campaigns span two clusters: tests run on System 1 (NVIDIA), the
// metadata JSON travels to System 2 (AMD), the same tests re-run there, and
// the merged file yields the discrepancy report.  This example performs the
// full protocol through actual files in a scratch directory, playing both
// systems in turn — exactly the artifact flow an acceptance-testing team
// would script.

#include <cstdio>
#include <filesystem>

#include "diff/metadata.hpp"
#include "opt/platform.hpp"
#include "diff/report.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("acceptance_testing",
                         "Two-system metadata protocol walkthrough (paper Fig. 3)");
  cli.add_int("programs", 'p', "number of tests to ship", 120);
  cli.add_int("inputs", 'i', "inputs per test", 5);
  cli.add_int("seed", 's', "campaign seed", 7);
  cli.add_string("dir", 'd', "scratch directory for the metadata files",
                 std::filesystem::temp_directory_path().string());
  if (!cli.parse(argc, argv)) return 1;

  diff::CampaignConfig cfg;
  cfg.num_programs = static_cast<int>(cli.get_int("programs"));
  cfg.inputs_per_program = static_cast<int>(cli.get_int("inputs"));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const std::filesystem::path dir(cli.get_string("dir"));
  const std::string stage1 = (dir / "gpudiff_system1.json").string();
  const std::string stage2 = (dir / "gpudiff_merged.json").string();

  // ---- System 1 (Lassen-sim: NVIDIA V100-sim) ----
  std::printf("[system 1] generating %d tests x %d inputs...\n",
              cfg.num_programs, cfg.inputs_per_program);
  diff::Metadata md = diff::Metadata::create(cfg);
  std::printf("[system 1] running all tests on nvcc-sim (5 opt levels)...\n");
  md.record_platform(*opt::find_platform("nvcc"));
  md.save(stage1);
  std::printf("[system 1] wrote %s (%ju bytes) — transfer to system 2\n\n",
              stage1.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(stage1)));

  // ---- System 2 (Tioga-sim: AMD MI250X-sim) ----
  std::printf("[system 2] loading metadata and locating the same tests...\n");
  diff::Metadata loaded = diff::Metadata::load(stage1);
  std::printf("[system 2] %zu tests found; re-running on hipcc-sim...\n",
              loaded.test_count());
  loaded.record_platform(*opt::find_platform("hipcc"));
  loaded.save(stage2);
  std::printf("[system 2] wrote merged results to %s\n\n", stage2.c_str());

  // ---- Analysis ----
  const diff::CampaignResults results = diff::Metadata::load(stage2).analyze();
  std::printf("%s\n",
              diff::render_per_level(results, "Between-platform campaign results")
                  .c_str());
  std::printf("%s\n", diff::render_records(results, 10).c_str());

  // The protocol is bit-equivalent to a single-machine differential run.
  const auto direct = diff::run_campaign(cfg);
  const bool equivalent =
      direct.discrepancies_total() == results.discrepancies_total();
  std::printf("protocol == single-machine campaign: %s\n",
              equivalent ? "yes (bit-identical counts)" : "NO — BUG");

  std::filesystem::remove(stage1);
  std::filesystem::remove(stage2);
  return equivalent ? 0 : 1;
}
