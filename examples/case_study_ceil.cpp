// Case Study 2 (paper Fig. 5): ceil(1.5955E-125) is 0 on nvcc, 1 on hipcc,
// turning a benign division into Inf.  This example rebuilds the paper's
// kernel, shows the divergence at every optimization level, and dumps the
// pseudo-assembly of both compilations (the paper's SASS/ISA analysis).

#include <cstdio>

#include "diff/runner.hpp"
#include "emit/emit.hpp"
#include "ir/builder.hpp"
#include "support/cli.hpp"
#include "vgpu/pseudo_asm.hpp"
#include "vmath/mathlib.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  using namespace gpudiff::ir;
  support::CliParser cli("case_study_ceil",
                         "Reproduce paper Fig. 5 (ceil divergence)");
  cli.add_flag("asm", "dump both pseudo-assembly listings");
  if (!cli.parse(argc, argv)) return 1;

  // Fig. 5 verbatim.
  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int t = b.decl_temp(make_literal(A, 1.1147e-307, "+1.1147E-307"));
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Div, make_temp(A, t),
                         make_call(A, MathFn::Ceil,
                                   make_literal(A, 1.5955e-125, "+1.5955E-125"))));
  const Program p = b.build();

  std::printf("%s\n", emit::emit_kernel(p).c_str());
  vgpu::KernelArgs args;
  args.fp = {1.2374e-306};
  args.ints = {0};
  std::printf("Input: %s\n\n", args.to_varity_string(p).c_str());
  for (auto level : opt::kAllOptLevels) {
    const auto cmp = diff::run_differential(p, args, level);
    std::printf("  -%-6s nvcc: %-16s hipcc: %-22s [%s]\n",
                opt::to_string(level).c_str(), cmp.platforms[0].printed().c_str(),
                cmp.platforms[1].printed().c_str(), to_string(cmp.cls).c_str());
  }
  std::printf("\nIsolated: ceil(+1.5955E-125) = %g (nvcc-sim) vs %g (hipcc-sim)\n",
              vmath::nv_libdevice().call64(MathFn::Ceil, 1.5955e-125),
              vmath::amd_ocml().call64(MathFn::Ceil, 1.5955e-125));
  std::printf(
      "Root cause (modeled): the NV ceil fast path flushes inputs with\n"
      "unbiased exponent below -126 — an FP32-tuned threshold reused in the\n"
      "FP64 path — so the tiny constant never rounds up to 1, and the\n"
      "division by the resulting 0 produces Inf.\n");

  if (cli.get_flag("asm")) {
    for (auto tc : {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
      const auto exe = opt::compile(p, {tc, opt::OptLevel::O0, false});
      std::printf("\n%s\n", vgpu::disassemble(exe).c_str());
    }
  }
  return 0;
}
