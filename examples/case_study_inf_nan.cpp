// Case Study 3 (paper Fig. 6): both platforms agree on -inf at -O0, then
// hipcc flips to -nan at every optimization level from O1 on.  The culprit
// is predicate-multiply if-conversion: the untaken branch's infinite value
// is multiplied by a 0.0 predicate, and 0 * inf is NaN.

#include <cstdio>

#include "diff/runner.hpp"
#include "emit/emit.hpp"
#include "ir/builder.hpp"
#include "support/cli.hpp"
#include "vgpu/pseudo_asm.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  using namespace gpudiff::ir;
  support::CliParser cli("case_study_inf_nan",
                         "Reproduce paper Fig. 6 (-inf vs -nan at O1+)");
  cli.add_flag("asm", "dump the pseudo-assembly at O1 for both toolchains");
  if (!cli.parse(argc, argv)) return 1;

  ProgramBuilder b(Precision::FP64);
  Arena& A = b.arena();
  const int var_1 = b.add_int_param();
  const int var_2 = b.add_scalar_param();
  const int var_5 = b.add_scalar_param();
  const int var_8 = b.add_scalar_param();
  const int t = b.decl_temp(make_bin(A, 
      BinOp::Sub, make_literal(A, -1.8007e-323, "-1.8007E-323"),
      make_call(A, MathFn::Cosh, make_bin(A, BinOp::Div, make_param(A, var_2),
                                       make_literal(A, -1.7569e192, "-1.7569E192")))));
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Add, make_temp(A, t),
                         make_call(A, MathFn::Fabs,
                                   make_literal(A, 1.5726e-307, "+1.5726E-307"))));
  b.begin_for(var_1);
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Div, make_literal(A, 1.9903e306, "+1.9903E306"),
                         make_param(A, var_5)));
  b.end_block();
  b.begin_if(make_cmp(A, CmpOp::Ge, make_param(A, 0),
                      make_literal(A, -1.4205e305, "-1.4205E305")));
  b.assign_comp(AssignOp::Add,
                make_bin(A, BinOp::Mul, make_literal(A, 1.3803e305, "+1.3803E305"),
                         make_param(A, var_8)));
  b.end_block();
  const Program p = b.build();

  std::printf("%s\n", emit::emit_kernel(p).c_str());
  vgpu::KernelArgs args;
  args.fp = {-1.5548e-320, 0.0, 1.9121e306, -1.8994e-311, 1.2915e306};
  args.ints = {0, 5, 0, 0, 0};
  std::printf("Input: %s\n\n", args.to_varity_string(p).c_str());

  for (auto level : opt::kAllOptLevels) {
    const auto cmp = diff::run_differential(p, args, level);
    std::printf("  -%-6s nvcc: %-8s hipcc: %-8s %s\n",
                opt::to_string(level).c_str(), cmp.platforms[0].printed().c_str(),
                cmp.platforms[1].printed().c_str(),
                cmp.discrepant() ? "<-- diverged" : "(consistent)");
  }
  std::printf(
      "\nPaper Fig. 6: nvcc -O0 -inf / hipcc -O0 -inf; nvcc -O1 -inf /\n"
      "hipcc -O1 -nan.  The hipcc-sim O1 pipeline if-converts the guarded\n"
      "single-statement add into comp += (double)cond * value; the paper\n"
      "attributes the flip to \"reordering or elimination of intermediate\n"
      "steps\" — this is one concrete such reordering.\n");

  if (cli.get_flag("asm")) {
    for (auto tc : {opt::Toolchain::Nvcc, opt::Toolchain::Hipcc}) {
      const auto exe = opt::compile(p, {tc, opt::OptLevel::O1, false});
      std::printf("\n%s\n", vgpu::disassemble(exe).c_str());
    }
  }
  return 0;
}
