// Quickstart: the whole pipeline on one generated test.
//
//   1. Generate a random Varity-style kernel (paper Fig. 2) and an input.
//   2. Emit it as CUDA and HIP source.
//   3. Compile it with both virtual toolchains at every optimization level.
//   4. Run and compare, printing outcomes and any discrepancy class.
//
// Run with --index N to pick a different random program, --fp32 for single
// precision, --source to dump the full translation units.

#include <cstdio>

#include "diff/runner.hpp"
#include "emit/emit.hpp"
#include "gen/generator.hpp"
#include "gen/inputs.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  using namespace gpudiff;
  support::CliParser cli("quickstart", "gpudiff end-to-end walkthrough");
  cli.add_int("index", 'n', "program index in the generator stream", 4);
  cli.add_int("seed", 's', "generator seed", 42);
  cli.add_flag("fp32", "generate a single-precision test");
  cli.add_flag("source", "print the full CUDA and HIP translation units");
  if (!cli.parse(argc, argv)) return 1;

  gen::GenConfig cfg;
  if (cli.get_flag("fp32")) cfg.precision = ir::Precision::FP32;
  gen::Generator generator(cfg, static_cast<std::uint64_t>(cli.get_int("seed")));
  gen::InputGenerator inputs(static_cast<std::uint64_t>(cli.get_int("seed")));

  const ir::Program program =
      generator.generate(static_cast<std::uint64_t>(cli.get_int("index")));
  std::printf("---- generated kernel (paper Fig. 2 style) ----\n\n%s\n",
              emit::emit_kernel(program).c_str());
  if (cli.get_flag("source")) {
    std::printf("---- CUDA translation unit ----\n\n%s\n",
                emit::emit_cuda(program).c_str());
    std::printf("---- HIP translation unit ----\n\n%s\n",
                emit::emit_hip(program).c_str());
  }

  const auto args = inputs.generate(
      program, static_cast<std::uint64_t>(cli.get_int("index")), 0);
  std::printf("---- input ----\n\n%s\n\n", args.to_varity_string(program).c_str());

  std::printf("---- differential run ----\n\n");
  for (auto level : opt::kAllOptLevels) {
    const auto cmp = diff::run_differential(program, args, level);
    std::printf("%-6s nvcc-sim: %-24s hipcc-sim: %-24s %s\n",
                opt::to_string(level).c_str(), cmp.platforms[0].printed().c_str(),
                cmp.platforms[1].printed().c_str(),
                cmp.discrepant() ? ("DISCREPANCY [" + to_string(cmp.cls) + "]").c_str()
                                 : "consistent");
  }

  // The virtual FPU restores the exception visibility real GPUs lack
  // (paper Table II / §II-B).
  const auto o0 = diff::run_differential(program, args, opt::OptLevel::O0);
  std::printf("\nFP exceptions (nvcc-sim -O0): %s\n",
              o0.platforms[0].flags.to_string().c_str());
  return 0;
}
